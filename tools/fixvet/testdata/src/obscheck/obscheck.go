// Package fixture seeds the obscheck trace rules with one violation and
// one compliant counterpart each. It imports the real internal/obs so
// the *obs.Trace type resolves exactly as it does in the tree.
package fixture

import (
	"expvar"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/obs"
)

var strayCounter atomic.Int64 // want `package-level atomic counter strayCounter outside internal/obs`

// cursorHolder is fine: struct-field atomics are state, not metrics.
type cursorHolder struct {
	next atomic.Int64
}

func localAtomicOK() int64 {
	var inFlight atomic.Int64 // ok: function-local
	inFlight.Add(1)
	var h cursorHolder
	h.next.Add(1)
	_ = strayCounter.Load()
	return inFlight.Load() + h.next.Load()
}

func unpaired(tr *obs.Trace) {
	probeStart := time.Now() // want `phase timer probeStart is started but never observed`
	_ = probeStart
	tr.Count = 1 // want `write through \*obs\.Trace tr without a nil guard`
	if tr != nil {
		tr.Matched++ // ok: guarded by the enclosing if
	}
}

func guarded(tr *obs.Trace, n int) time.Duration {
	if tr == nil {
		return 0
	}
	probeStart := time.Now()
	tr.Phase[obs.PhaseProbe] += time.Since(probeStart) // ok: early return above
	if n > 0 && tr != nil {
		tr.Scanned += n // ok: && conjunct guard
	}
	return tr.Phase[obs.PhaseProbe]
}

func subConsumes() time.Duration {
	fetchStart := time.Now()
	refineStart := time.Now()
	_ = time.Since(refineStart)
	return refineStart.Sub(fetchStart) // ok: Sub observes the timer
}

func register() {
	expvar.Publish("fixture", nil) // want `expvar.Publish outside internal/obs`
}
