// Package obs stands in for internal/obs: registration is allowed here,
// but names must be literal and unique.
package obs

import "expvar"

func publish() {
	expvar.Publish("fix", nil)
	expvar.Publish("fix", nil) // want `expvar name "fix" already registered`
	name := "dynamic"
	expvar.NewInt(name) // want `expvar\.NewInt with a non-literal name`
}
