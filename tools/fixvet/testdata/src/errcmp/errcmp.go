// Package fixture seeds every errcmp rule with one violation and one
// compliant counterpart.
package fixture

import (
	"errors"
	"fmt"
	"os"
)

// ErrBoom is a package-level sentinel.
var ErrBoom = errors.New("boom")

func compare(err error) bool {
	if err == ErrBoom { // want `sentinel error ErrBoom compared with ==`
		return true
	}
	if ErrBoom != err { // want `sentinel error ErrBoom compared with !=`
		return false
	}
	if err == nil { // ok: nil comparison is the idiom
		return false
	}
	return errors.Is(err, ErrBoom) // ok
}

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("loading index: %v", err) // want `fmt.Errorf formats error err without %w`
	}
	return fmt.Errorf("loading index: %w", err) // ok
}

func wrapTwo(cause error) error {
	// ok: a format that already wraps may erase a second error deliberately.
	return fmt.Errorf("%w: underlying: %v", ErrBoom, cause)
}

func closer(f *os.File) error {
	f.Close()        // want `f.Close\(\) error is silently dropped`
	_ = f.Close()    // ok: explicit discard
	defer f.Close()  // ok: visible read-path idiom
	return f.Close() // ok: checked
}
