// Package fixture seeds every lockcheck rule with one violation and one
// compliant counterpart.
package fixture

import (
	"os"
	"sync"
)

// Counter owns a mutex guarding its count.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Good takes the lock before touching the guarded field.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bad reads the guarded field without the lock.
func (c *Counter) Bad() int {
	return c.n // want `Counter.Bad accesses c.n \(guarded by mu\) without acquiring it`
}

// Deadlock calls a locking sibling while holding the lock.
func (c *Counter) Deadlock() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Good() // want `self-deadlock`
}

// helper is unexported: assumed called with the lock held, never flagged.
func (c *Counter) helper() int { return c.n }

// Chained unlocks before calling the locking sibling: allowed.
func (c *Counter) Chained() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.Good()
}

// Leafy owns a leaf mutex: never held across storage/os I/O.
type Leafy struct {
	mu   sync.Mutex // lockcheck: leaf
	path string     // guarded by mu
}

// Bad reads a file while holding the leaf mutex.
func (l *Leafy) Bad() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := os.ReadFile(l.path) // want `performs I/O \(os.ReadFile\) while holding leaf mutex mu`
	return err
}

// Good copies the guarded state out, releases, then does the I/O.
func (l *Leafy) Good() error {
	l.mu.Lock()
	p := l.path
	l.mu.Unlock()
	_, err := os.ReadFile(p)
	return err
}
