// Package fixture seeds every paircheck rule: unpaired mutexes on early
// returns and panics, pins and handles forgotten on some path, lost
// context cancel funcs, half-observed phase timers, and annotation
// obligations with no matching call.
package fixture

import (
	"context"
	"sync"
	"time"
)

// counter owns a lock paired on every path — or not.
type counter struct {
	mu sync.RWMutex
	n  int
}

// Good releases through defer: every exit is covered.
func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Reader pairs RLock with RUnlock: read mode is tracked separately.
func (c *counter) Reader() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Never takes the lock and falls off the end with it held.
func (c *counter) Never() {
	c.mu.Lock() // want `mutex c.mu in Never is never released \(no Unlock on any path\)`
	c.n++
}

// Leaky unlocks on the fallthrough path but not the early return.
func (c *counter) Leaky(n int) int {
	c.mu.Lock() // want `mutex c.mu in Leaky is released on some paths but not when the return at line \d+`
	if n > 0 {
		return n
	}
	c.mu.Unlock()
	return 0
}

// PanicHeld still holds the lock when the panic fires.
func (c *counter) PanicHeld(n int) {
	c.mu.Lock() // want `mutex c.mu in PanicHeld is still held when the panic at line \d+ fires`
	if n < 0 {
		panic("negative")
	}
	c.mu.Unlock()
}

// gen is a pinned resource in the Generation mold.
type gen struct{ refs int }

// Pin acquires a reference; paired with Unpin.
func (g *gen) Pin() bool { g.refs++; return true }

// Unpin releases a Pin.
func (g *gen) Unpin() { g.refs-- }

// PinGood releases the conditional pin on both continuation paths.
func PinGood(g *gen) int {
	if !g.Pin() {
		return 0
	}
	defer g.Unpin()
	return g.refs
}

// PinLeak takes a pin inside the condition and forgets it.
func PinLeak(g *gen) int {
	if g.Pin() { // want `pin g in PinLeak is never released \(no Unpin on any path\)`
		return g.refs
	}
	return 0
}

// store hands out closable snapshots through a View method.
type store struct{}

// snapshot must be closed after use.
type snapshot struct{}

// Close releases the snapshot.
func (s *snapshot) Close() error { return nil }

// View opens a snapshot handle.
func (s *store) View() *snapshot { return &snapshot{} }

// HandleGood closes on every path via defer.
func HandleGood(s *store) {
	v := s.View()
	defer v.Close()
}

// HandleLeak closes on the fallthrough path but not the early return.
func HandleLeak(s *store, cond bool) {
	v := s.View() // want `handle v \(from s.View\) in HandleLeak is released on some paths but not when the return at line \d+`
	if cond {
		return
	}
	v.Close()
}

// LostCancel drops the WithTimeout cancel func: the context's timer and
// goroutine live until the deadline even when work returns early.
func LostCancel(parent context.Context, d time.Duration) error {
	ctx, cancel := context.WithTimeout(parent, d) // want `handle cancel \(from context.WithTimeout\) in LostCancel is never released \(no call on any path\)`
	return work(ctx)
}

// CancelGood defers the cancel: fine.
func CancelGood(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return work(ctx)
}

// work stands in for a context-consuming callee.
func work(ctx context.Context) error { return ctx.Err() }

// TimerGood observes the phase timer on its single exit.
func TimerGood() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// TimerPartial observes the timer on one path and drops it on the
// other, so that phase records zero for the early exit.
func TimerPartial(ok bool) time.Duration {
	start := time.Now() // want `timer start \(time.Now\(\)\) in TimerPartial is released on some paths but not when the return at line \d+`
	if ok {
		return 0
	}
	return time.Since(start)
}

// TimerErrExit drops the timer only on the error return: exempt, the
// phase was abandoned along with the work.
func TimerErrExit(ok bool) (time.Duration, error) {
	start := time.Now()
	if !ok {
		return 0, context.Canceled
	}
	return time.Since(start), nil
}

// Handoff locks and hands the locked counter to a callee that unlocks;
// the annotation moves the obligation.
//
// paircheck: ignore(c.mu)
func Handoff(c *counter) {
	c.mu.Lock()
	unlockLater(c)
}

// unlockLater releases the lock its caller acquired.
//
// paircheck: releases(c.mu)
func unlockLater(c *counter) { c.mu.Unlock() }

// reset claims to release a resource its body never touches.
//
// paircheck: releases(res)
func reset() {} // want "reset declares .paircheck: releases\(res\). but its body has no matching release call"
