// Package fixture seeds every ctxcheck rule with one violation and one
// compliant counterpart. The driver test loads it as if it were
// internal/core, where the library-code rules apply.
package fixture

import "context"

// DoCtx does cancellable work.
func DoCtx(ctx context.Context, n int) error { return ctx.Err() }

// Do is the sanctioned context-free shorthand: a single-return
// delegation to its Ctx variant.
func Do(n int) error {
	return DoCtx(context.Background(), n) // ok
}

// RunCtx does cancellable work.
func RunCtx(ctx context.Context) error { return ctx.Err() }

// Run drifts from its Ctx variant instead of delegating.
func Run() error { // want `Run has a RunCtx variant but is not a single-return delegation`
	err := RunCtx(context.Background()) // want `context.Background\(\) in library code outside a FooCtx delegating wrapper`
	return err
}

func lateCtx(a int, ctx context.Context) error { // want `context.Context must be the first parameter`
	_ = a
	return ctx.Err()
}

func badName(c context.Context) error { // want `context parameter must be named ctx, not c`
	return c.Err()
}

func detached() error {
	_ = context.TODO() // want `context.TODO\(\) in library code`
	return nil
}
