// Package fix stands in for the public package, where every exported
// symbol needs a doc comment.
package fix

// Documented carries prose.
func Documented() {}

func Undocumented() {} // want `exported function Undocumented is undocumented`

// want:+2 `exported type Exposed is undocumented`

type Exposed struct{}

// want:+2 `exported value Value is undocumented`

var Value = 1
