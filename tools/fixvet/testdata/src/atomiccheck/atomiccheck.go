// Package fixture seeds every atomiccheck rule with one violation and a
// compliant counterpart: typed atomics used non-atomically, old-style
// atomic fields touched plainly, and immutable-after-publish writes
// outside builders.
package fixture

import "sync/atomic"

// Stat counts with a typed atomic.
type Stat struct {
	count atomic.Int64
}

// Bump uses the method API: fine.
func (s *Stat) Bump() { s.count.Add(1) }

// Share hands out the field's address: atomic access continues, fine.
func (s *Stat) Share() *atomic.Int64 { return &s.count }

// Reset assigns the typed atomic directly instead of calling Store.
func (s *Stat) Reset() {
	s.count = atomic.Int64{} // want `Reset assigns typed atomic field s.count directly; use count.Store`
}

// Snapshot copies the typed atomic by value instead of calling Load.
func (s *Stat) Snapshot() int64 {
	c := s.count // want `Snapshot copies typed atomic field s.count by value; use count.Load`
	return c.Load()
}

// Gauge mixes old-style sync/atomic access with plain access.
type Gauge struct {
	hits int64
}

// Inc is the atomic access that makes hits atomic everywhere.
func (g *Gauge) Inc() { atomic.AddInt64(&g.hits, 1) }

// Load reads it atomically: fine.
func (g *Gauge) Load() int64 { return atomic.LoadInt64(&g.hits) }

// Read reads the field plainly: a race with Inc.
func (g *Gauge) Read() int64 {
	return g.hits // want `Read accesses g.hits non-atomically; the field is used via sync/atomic elsewhere`
}

// Alias leaks the field's address outside an atomic call.
func (g *Gauge) Alias() *int64 {
	return &g.hits // want `Alias takes the address of atomically-accessed field g.hits outside an atomic call`
}

// NewGauge is a builder: plain initialization before publication is the
// point.
func NewGauge(seed int64) *Gauge {
	g := &Gauge{}
	g.hits = seed
	return g
}

// Frozen is a published-snapshot struct: its fields are written once by
// a builder and then shared across goroutines without locks.
type Frozen struct {
	pages [][]byte // immutable after publish
	root  uint32   // immutable after publish
	hits  int
}

// NewFrozen is a builder by name prefix: initializing the immutable
// fields here is the point.
func NewFrozen(pages [][]byte, root uint32) *Frozen {
	f := &Frozen{}
	f.pages = pages
	f.root = root
	return f
}

// refreshFrozen carries the builder annotation instead of a prefix.
// lockcheck: builder
func refreshFrozen(f *Frozen, root uint32) {
	f.root = root
}

// Mutate writes the published fields outside any builder.
func (f *Frozen) Mutate(buf []byte) {
	f.root = 7       // want `Frozen.Mutate writes f.root \(immutable after publish\) outside a builder`
	f.pages[0] = buf // want `Frozen.Mutate writes f.pages \(immutable after publish\) outside a builder`
	f.hits++         // unannotated: fine
	pages := f.pages // reading is fine
	_, _ = pages, buf
}

// Leak takes an immutable field's address outside a builder: the field
// could then be mutated through the pointer after publication.
func (f *Frozen) Leak() *uint32 {
	return &f.root // want `Frozen.Leak takes the address of f.root \(immutable after publish\) outside a builder`
}
