// Package fixture seeds every sendcheck rule: blocking channel
// operations inside spawned goroutines with no cancellation arm, no
// capacity bound, and no close — next to compliant counterparts for
// each escape hatch.
package fixture

import (
	"context"
	"time"
)

// Leak spawns a sender nobody is obliged to receive from.
func Leak() chan int {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `goroutine sends on ch, which is not provably buffered, outside a cancellable select`
	}()
	return ch
}

// Bounded sends into known capacity: fine.
func Bounded() chan int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return ch
}

// Cancellable guards the send with a ctx.Done() arm: fine.
func Cancellable(ctx context.Context, ch chan int) {
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// Timeout bounds the receive with time.After: fine.
func Timeout(ch chan int) {
	go func() {
		select {
		case <-ch:
		case <-time.After(time.Second):
		}
	}()
}

// SelectNoCtx selects, but no arm can always make progress, so the
// select as a whole can block forever.
func SelectNoCtx(a, b chan int) {
	go func() {
		select {
		case v := <-a: // want `goroutine blocks receiving from a outside a cancellable select`
			_ = v
		case b <- 1: // want `goroutine sends on b, which is not provably buffered, outside a cancellable select`
		}
	}()
}

// RangeLeak drains a channel nothing in this package ever closes.
func RangeLeak(jobs chan int) {
	go func() {
		for v := range jobs { // want `goroutine ranges over jobs but nothing in this package closes it`
			_ = v
		}
	}()
}

// RangeClosed drains a channel its spawner closes: fine.
func RangeClosed() {
	jobs := make(chan int, 4)
	go func() {
		for range jobs {
		}
	}()
	close(jobs)
}

// Pump drains a receive-only parameter: the producer owns the close.
func Pump(jobs <-chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// Waived blocks deliberately; the op-line waiver records why.
func Waived(ch chan int) {
	go func() {
		ch <- 1 // sendcheck: bounded — the caller contract guarantees exactly one receiver
	}()
}

// WaivedSpawn waives at the spawn site instead.
func WaivedSpawn(ch chan int) {
	go func() { // sendcheck: bounded — lifecycle documented at the spawn
		ch <- 1
	}()
}

// worker owns a results channel that is unbuffered at every make site.
type worker struct{ out chan int }

// newWorker builds the worker with an unbuffered channel.
func newWorker() *worker { return &worker{out: make(chan int)} }

// run pushes results; flagged because out is unbuffered everywhere in
// the package and run is spawned as a goroutine.
func (w *worker) run() {
	w.out <- 1 // want `goroutine sends on w.out, which is not provably buffered, outside a cancellable select`
}

// Start spawns run by method call: sendcheck resolves the declaration.
func (w *worker) Start() { go w.run() }
