package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// lockcheckAnalyzer enforces the mutex discipline of the index core.
// Structs annotate ownership in field comments:
//
//	mu   sync.Mutex // lockcheck: leaf  (optional: no I/O while held)
//	root uint32     // guarded by mu
//
// Rules: (1) exported methods that touch a guarded field must acquire
// the guarding mutex; (2) a method holding the mutex must not call a
// sibling method that acquires it again (self-deadlock, sync.Mutex is
// not reentrant); (3) a mutex marked `lockcheck: leaf` must never be
// held across storage or os I/O calls.
//
// The immutable-after-publish discipline that used to live here moved
// to atomiccheck, alongside the other lock-free access rules; the
// cross-mutex ordering rules (`lockcheck: order N`) live in lockorder.
var lockcheckAnalyzer = &Analyzer{
	Name: "lockcheck",
	Doc: "guarded struct fields (`// guarded by mu`) require the lock in " +
		"exported methods; no re-locking a held mutex; leaf mutexes " +
		"(`// lockcheck: leaf`) must not be held across storage/os I/O",
	Run: runLockcheck,
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// lockedStruct describes one mutex-owning struct type.
type lockedStruct struct {
	name    string
	mutexes map[string]bool   // mutex field name → leaf?
	guarded map[string]string // field name → guarding mutex field
	methods map[string]*ast.FuncDecl
}

func runLockcheck(pass *Pass) {
	structs := map[string]*lockedStruct{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if ls := scanStruct(ts.Name.Name, st); ls != nil {
					structs[ls.name] = ls
				}
			}
		}
	}
	if len(structs) == 0 {
		return
	}
	// Collect methods per annotated struct.
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, _ *ast.BlockStmt) {
			_, typeName := receiverName(fd)
			if ls, ok := structs[typeName]; ok {
				ls.methods[fd.Name.Name] = fd
			}
		})
	}
	for _, ls := range structs {
		checkStruct(pass, ls)
	}
}

// scanStruct reads the lock annotations off a struct declaration,
// returning nil when the struct owns no mutex.
func scanStruct(name string, st *ast.StructType) *lockedStruct {
	ls := &lockedStruct{
		name:    name,
		mutexes: map[string]bool{},
		guarded: map[string]string{},
		methods: map[string]*ast.FuncDecl{},
	}
	for _, field := range st.Fields.List {
		comments := fieldComments(field)
		if isMutexType(field.Type) {
			leaf := strings.Contains(comments, "lockcheck: leaf")
			for _, n := range field.Names {
				ls.mutexes[n.Name] = leaf
			}
			continue
		}
		if m := guardedByRe.FindStringSubmatch(comments); m != nil {
			for _, n := range field.Names {
				ls.guarded[n.Name] = m[1]
			}
		}
	}
	if len(ls.mutexes) == 0 {
		return nil
	}
	// Drop guards naming something that is not a mutex field.
	for f, mu := range ls.guarded {
		if _, ok := ls.mutexes[mu]; !ok {
			delete(ls.guarded, f)
		}
	}
	return ls
}

// fieldComments joins a field's doc and line comments.
func fieldComments(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// isMutexType matches the AST shape sync.Mutex / sync.RWMutex.
func isMutexType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "sync" && (sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex")
}

// checkStruct applies the three lock rules to every method of ls.
func checkStruct(pass *Pass, ls *lockedStruct) {
	// locks[mu] for each method: does the body call recv.mu.Lock/RLock?
	locks := map[string]map[string]token.Pos{}
	for name, fd := range ls.methods {
		recv, _ := receiverName(fd)
		locks[name] = lockCalls(fd, recv, ls)
	}
	for name, fd := range ls.methods {
		recv, _ := receiverName(fd)
		if recv == "" || recv == "_" {
			continue
		}
		held := locks[name]

		// Rule 1: exported methods touching guarded fields must lock.
		if fd.Name.IsExported() {
			for field, mu := range ls.guarded {
				if pos, touched := fieldAccess(fd, recv, field, ls); touched {
					if _, ok := held[mu]; !ok {
						pass.Reportf(pos, "%s.%s accesses %s.%s (guarded by %s) without acquiring it",
							ls.name, name, recv, field, mu)
					}
				}
			}
		}

		// Rules 2 and 3 only apply while a mutex is held.
		for mu, lockPos := range held {
			end := unlockPos(fd, recv, mu)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() <= lockPos || call.Pos() >= end {
					return true
				}
				// Rule 2: no calling a sibling method that re-locks mu.
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
						if callee, ok := ls.methods[sel.Sel.Name]; ok {
							if _, again := locks[callee.Name.Name][mu]; again {
								pass.Reportf(call.Pos(), "%s.%s calls %s.%s while holding %s, which %s locks again (self-deadlock)",
									ls.name, name, recv, sel.Sel.Name, mu, sel.Sel.Name)
							}
						}
					}
				}
				// Rule 3: leaf mutexes are never held across I/O.
				if ls.mutexes[mu] && isIOCall(pass, call) {
					pass.Reportf(call.Pos(), "%s.%s performs I/O (%s) while holding leaf mutex %s",
						ls.name, name, exprString(call.Fun), mu)
				}
				return true
			})
		}
	}
}

// lockCalls finds recv.mu.Lock()/RLock() statements in fd's body and
// returns the position of the first lock of each mutex.
func lockCalls(fd *ast.FuncDecl, recv string, ls *lockedStruct) map[string]token.Pos {
	out := map[string]token.Pos{}
	if recv == "" {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		mu, method, ok := mutexCall(call, recv, ls)
		if ok && (method == "Lock" || method == "RLock") {
			if _, seen := out[mu]; !seen {
				out[mu] = call.Pos()
			}
		}
		return true
	})
	return out
}

// mutexCall decomposes recv.mu.Method() calls.
func mutexCall(call *ast.CallExpr, recv string, ls *lockedStruct) (mu, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	inner, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := inner.X.(*ast.Ident)
	if !isID || id.Name != recv {
		return "", "", false
	}
	if _, isMu := ls.mutexes[inner.Sel.Name]; !isMu {
		return "", "", false
	}
	return inner.Sel.Name, sel.Sel.Name, true
}

// unlockPos returns the position where mu is explicitly released in the
// body (a non-deferred recv.mu.Unlock()), or the end of the function
// when release is deferred or absent.
func unlockPos(fd *ast.FuncDecl, recv string, mu string) token.Pos {
	end := fd.Body.End()
	ls := &lockedStruct{mutexes: map[string]bool{mu: false}}
	deferred := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if m, method, ok := mutexCall(d.Call, recv, ls); ok && m == mu && strings.HasSuffix(method, "Unlock") {
				deferred = true
			}
			return false // don't descend: the deferred call itself is not a release point
		}
		return true
	})
	if deferred {
		return end
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, method, ok := mutexCall(call, recv, ls); ok && m == mu && strings.HasSuffix(method, "Unlock") {
			if call.Pos() < end {
				end = call.Pos()
			}
		}
		return true
	})
	return end
}

// fieldAccess reports the first recv.field access in fd's body, skipping
// accesses that are themselves the mutex.
func fieldAccess(fd *ast.FuncDecl, recv, field string, ls *lockedStruct) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv && sel.Sel.Name == field {
			pos, found = sel.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// isIOCall reports whether call lands in the storage package or the os
// package (file I/O) — the operations a leaf mutex must not cover.
func isIOCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pass.Info != nil {
		// Package function: os.WriteFile, storage.Open, ...
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj, ok := pass.Info.Uses[id]; ok {
				if pn, isPkg := obj.(*types.PkgName); isPkg {
					return ioPackagePath(pn.Imported().Path())
				}
			}
		}
		// Method on a value from an I/O package: file.ReadAt, store.Cursor, ...
		if s, ok := pass.Info.Selections[sel]; ok && s.Recv() != nil {
			if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
				return ioPackagePath(named.Obj().Pkg().Path())
			}
		}
	}
	return false
}

// ioPackagePath classifies packages whose calls count as I/O.
func ioPackagePath(path string) bool {
	return path == "os" || path == "io" || strings.HasSuffix(path, "/internal/storage")
}

// namedOf unwraps pointers to reach a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
