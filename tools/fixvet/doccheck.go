package main

import (
	"go/ast"
	"strings"
)

// doccheckAnalyzer is the former tools/doclint, folded into the fixvet
// driver: every package under internal/ and tools/, and the public fix
// package, needs a package doc comment; every exported symbol of the
// public fix package and of non-main tools packages must be documented
// (godoc shows prose for every name). The tools subtree self-checks:
// fixvet holds its own code to the bar it enforces.
var doccheckAnalyzer = &Analyzer{
	Name: "doccheck",
	Doc: "package docs on internal/*, tools/* and fix; exported-symbol " +
		"docs on the public fix package and non-main tools packages",
	Run: runDoccheck,
}

func runDoccheck(pass *Pass) {
	rel := pass.relPkg()
	isFix := rel == "fix"
	inTools := rel == "tools" || strings.HasPrefix(rel, "tools/")
	if !isFix && !inTools && !strings.HasPrefix(rel, "internal/") && rel != "internal" {
		return
	}
	hasDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasDoc = true
			break
		}
	}
	if !hasDoc && len(pass.Files) > 0 {
		pass.Reportf(pass.Files[0].Name.Pos(), "package %s has no package doc comment", pass.PkgName)
	}
	if isFix || (inTools && pass.PkgName != "main") {
		for _, f := range pass.Files {
			checkExportedDocs(pass, f)
		}
	}
}

// checkExportedDocs reports exported top-level declarations with no doc
// comment. Fields and methods of documented types are not checked; the
// bar is "godoc shows prose for every name in the index".
func checkExportedDocs(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					if !exportedRecv(d.Recv) {
						continue
					}
					kind = "method"
				}
				pass.Reportf(d.Pos(), "exported %s %s is undocumented", kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						pass.Reportf(s.Pos(), "exported type %s is undocumented", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							pass.Reportf(n.Pos(), "exported value %s is undocumented", n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether the method receiver's base type is
// exported (methods on unexported types never appear in godoc).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}
