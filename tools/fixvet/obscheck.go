package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// obscheckAnalyzer guards the observability layer's two contracts: a nil
// *obs.Trace disables collection (so every write through a Trace pointer
// must sit behind a nil check), and phase timers are strictly paired (a
// fooStart := time.Now() that is never fed to time.Since leaves a phase
// silently unmeasured). It also keeps expvar registration centralized in
// internal/obs with unique literal names, because expvar names are
// process-global and collide with a runtime panic.
var obscheckAnalyzer = &Analyzer{
	Name: "obscheck",
	Doc: "writes through *obs.Trace need a nil guard; *Start timers must " +
		"be observed with time.Since; expvar registration only in " +
		"internal/obs, with unique literal names; package-level atomic " +
		"counters only in internal/obs",
	Run: runObscheck,
}

func runObscheck(pass *Pass) {
	for _, f := range pass.Files {
		funcsIn(f, func(fd *ast.FuncDecl, body *ast.BlockStmt) {
			checkTimerPairs(pass, fd)
			checkTraceWrites(pass, fd)
		})
	}
	checkExpvarRegistration(pass)
	checkCounterVars(pass)
}

// checkTimerPairs flags `x := time.Now()` locals following the phase-
// timer naming convention (xxxStart / start) that are never observed
// through time.Since(x) or t.Sub(x) in the same declaration.
func checkTimerPairs(pass *Pass, fd *ast.FuncDecl) {
	type timer struct {
		id   *ast.Ident
		used bool
	}
	var timers []*timer
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || !strings.HasSuffix(strings.ToLower(id.Name), "start") {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isPkgCall(pass.Info, call, "time", "Now") {
			return true
		}
		timers = append(timers, &timer{id: id})
		return true
	})
	if len(timers) == 0 {
		return
	}
	consumed := func(arg ast.Expr) {
		id, ok := arg.(*ast.Ident)
		if !ok {
			return
		}
		for _, t := range timers {
			if t.id.Name == id.Name {
				t.used = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		if isPkgCall(pass.Info, call, "time", "Since") {
			consumed(call.Args[0])
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sub" {
			consumed(call.Args[0])
		}
		return true
	})
	for _, t := range timers {
		if !t.used {
			pass.Reportf(t.id.Pos(), "phase timer %s is started but never observed with time.Since; the phase goes unmeasured", t.id.Name)
		}
	}
}

// checkTraceWrites requires every write through a *obs.Trace-typed
// variable (tr.Phase[...] += d, tr.Count = n, tr.Matched++) to be
// dominated by a nil check of that variable: either an enclosing
// `if tr != nil` (possibly as an && conjunct) or an earlier
// `if tr == nil { return }` in the same function.
func checkTraceWrites(pass *Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var target ast.Expr
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if root := traceRoot(pass, lhs); root != nil {
					target = root
				}
			}
		case *ast.IncDecStmt:
			target = traceRoot(pass, st.X)
		}
		if target == nil {
			return true
		}
		id, ok := target.(*ast.Ident)
		if !ok {
			return true
		}
		if !nilGuarded(pass, fd, parents, n.(ast.Stmt), id) {
			pass.Reportf(n.Pos(), "write through *obs.Trace %s without a nil guard; a nil Trace must disable collection", id.Name)
		}
		return true
	})
}

// traceRoot unwraps selector/index chains (tr.Phase[p], tr.Storage) and
// returns the base expression when its static type is *obs.Trace.
func traceRoot(pass *Pass, e ast.Expr) ast.Expr {
	base := e
	for {
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base = x.X
			continue
		case *ast.IndexExpr:
			base = x.X
			continue
		}
		break
	}
	if base == e {
		return nil // a plain identifier write, not a write through the pointer
	}
	if !isTracePtr(pass, base) {
		return nil
	}
	return base
}

// isTracePtr reports whether e's static type is a pointer to a type
// named Trace declared in a package named obs.
func isTracePtr(pass *Pass, e ast.Expr) bool {
	if pass.Info == nil {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Trace" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "obs"
}

// nilGuarded reports whether stmt is dominated by a nil check of id.
func nilGuarded(pass *Pass, fd *ast.FuncDecl, parents parentMap, stmt ast.Stmt, id *ast.Ident) bool {
	// Case 1: an enclosing if whose condition contains `id != nil` as a
	// conjunct, with stmt inside the then-branch.
	for n := ast.Node(stmt); n != nil && n != ast.Node(fd); n = parents[n] {
		ifStmt, ok := parents[n].(*ast.IfStmt)
		if !ok || n != ast.Node(ifStmt.Body) {
			continue
		}
		if condChecksNotNil(ifStmt.Cond, id.Name) {
			return true
		}
	}
	// Case 2: an earlier `if id == nil { ...return/continue }` in a block
	// that encloses stmt.
	for n := ast.Node(stmt); n != nil && n != ast.Node(fd); n = parents[n] {
		block, ok := parents[n].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, s := range block.List {
			if s.End() >= stmt.Pos() {
				break
			}
			ifStmt, ok := s.(*ast.IfStmt)
			if !ok || !condChecksIsNil(ifStmt.Cond, id.Name) || len(ifStmt.Body.List) == 0 {
				continue
			}
			if terminates(ifStmt.Body.List[len(ifStmt.Body.List)-1]) {
				return true
			}
		}
	}
	return false
}

// condChecksNotNil reports whether cond contains `name != nil` combined
// only with && at the top.
func condChecksNotNil(cond ast.Expr, name string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNotNil(c.X, name)
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return condChecksNotNil(c.X, name) || condChecksNotNil(c.Y, name)
		}
		if c.Op != token.NEQ {
			return false
		}
		return (identNamed(c.X, name) && isNilIdent(c.Y)) || (identNamed(c.Y, name) && isNilIdent(c.X))
	}
	return false
}

// condChecksIsNil reports whether cond is `name == nil` (alone or as an
// || disjunct).
func condChecksIsNil(cond ast.Expr, name string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condChecksIsNil(c.X, name)
	case *ast.BinaryExpr:
		if c.Op == token.LOR {
			return condChecksIsNil(c.X, name) || condChecksIsNil(c.Y, name)
		}
		if c.Op != token.EQL {
			return false
		}
		return (identNamed(c.X, name) && isNilIdent(c.Y)) || (identNamed(c.Y, name) && isNilIdent(c.X))
	}
	return false
}

func identNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// terminates reports whether stmt unconditionally leaves the block.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expvar registration functions that install a process-global name.
var expvarRegFuncs = map[string]bool{
	"Publish": true, "NewInt": true, "NewFloat": true, "NewMap": true, "NewString": true,
}

// checkExpvarRegistration keeps expvar names from colliding: expvar
// registers into a process-global namespace and panics on duplicates, so
// registration is allowed only in internal/obs, only with literal names,
// and never twice with the same name.
func checkExpvarRegistration(pass *Pass) {
	inObs := strings.HasSuffix(pass.PkgPath, "/internal/obs")
	seen := map[string]token.Pos{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qual, name := calleeName(call)
			if !expvarRegFuncs[name] || !isPkgIdent(pass, call, qual, "expvar") {
				return true
			}
			if !inObs {
				pass.Reportf(call.Pos(), "expvar.%s outside internal/obs; register metrics through the obs registry so names stay unique", name)
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				pass.Reportf(call.Pos(), "expvar.%s with a non-literal name; literal names are required so uniqueness is checkable", name)
				return true
			}
			if prev, dup := seen[lit.Value]; dup {
				prevPos := pass.Fset.Position(prev)
				pass.Reportf(call.Pos(), "expvar name %s already registered at %s:%d; duplicate registration panics", lit.Value, prevPos.Filename, prevPos.Line)
			} else {
				seen[lit.Value] = call.Pos()
			}
			return true
		})
	}
}

// atomicCounterTypes are the sync/atomic types that act as process-wide
// counters when declared at package level.
var atomicCounterTypes = map[string]bool{
	"Int32": true, "Int64": true, "Uint32": true, "Uint64": true,
}

// checkCounterVars keeps process-wide counters in the metrics registry:
// a package-level sync/atomic counter var outside internal/obs is
// invisible to Snapshot, /metrics and expvar, so the count it gathers
// never reaches an operator. Local and struct-field atomics (worker
// cursors, per-query accumulators) are fine.
func checkCounterVars(pass *Pass) {
	if strings.HasSuffix(pass.PkgPath, "/internal/obs") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isAtomicCounter(pass, name) {
						continue
					}
					pass.Reportf(name.Pos(), "package-level atomic counter %s outside internal/obs; process-wide counters belong in the obs registry so they reach Snapshot and expvar", name.Name)
				}
			}
		}
	}
}

// isAtomicCounter reports whether the declared name's static type is one
// of the sync/atomic counter types.
func isAtomicCounter(pass *Pass, name *ast.Ident) bool {
	if pass.Info == nil {
		return false
	}
	obj, ok := pass.Info.Defs[name]
	if !ok || obj == nil {
		return false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || !atomicCounterTypes[named.Obj().Name()] {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isPkgIdent reports whether the qualifier of a call resolves to the
// named package.
func isPkgIdent(pass *Pass, call *ast.CallExpr, qual, pkgName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pass.Info != nil {
		if obj, ok := pass.Info.Uses[id]; ok {
			pn, isPkg := obj.(*types.PkgName)
			return isPkg && pn.Imported().Name() == pkgName
		}
	}
	return qual == pkgName
}
