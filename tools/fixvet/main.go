// Command fixvet is the project's static-analysis suite: a stdlib-only
// (go/ast + go/parser + go/types, no x/tools) multi-analyzer driver that
// machine-checks the invariants PRs 1–3 introduced by convention.
//
// The six passes:
//
//   - errcmp: sentinel errors matched with errors.Is, wrapped with %w,
//     Close() errors never silently dropped
//   - lockcheck: `// guarded by mu` fields locked in exported methods,
//     no self-deadlock, leaf mutexes never held across storage/os I/O
//   - ctxcheck: ctx first and named ctx, context.Background() only in
//     Foo → FooCtx delegating wrappers, Foo/FooCtx pairs stay thin
//   - obscheck: nil-guarded *obs.Trace writes, paired phase timers,
//     centralized unique expvar registration
//   - depcheck: stdlib-or-module-internal imports only, one-way layering
//   - doccheck: the former tools/doclint (package and exported docs)
//
// Usage (normally via `make lint`):
//
//	go run ./tools/fixvet [-root dir] [-run a,b] [-json] [-baseline file] [-list]
//
// Exits 1 with one finding per line when anything outside the baseline
// is flagged. The baseline (tools/fixvet/baseline.txt) holds justified,
// commented allowlist entries in "analyzer<TAB>file<TAB>message" form;
// stale entries are reported so the file can only shrink.
//
// See docs/STATIC_ANALYSIS.md for each rule's motivating bug.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root to analyze")
		runList  = flag.String("run", "", "comma-separated analyzer names (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		baseline = flag.String("baseline", "", "baseline file (default: <root>/tools/fixvet/baseline.txt)")
		list     = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}

	l, err := NewLoader(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}

	findings := runAnalyzers(l, pkgs, selected)

	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join(l.Root, "tools", "fixvet", "baseline.txt")
	}
	base, err := loadBaseline(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}
	fresh, suppressed, stale := applyBaseline(findings, base)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []Finding{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(os.Stderr, "fixvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range fresh {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "fixvet: stale baseline entry (fixed? remove it): %s\n", strings.ReplaceAll(s, "\t", " | "))
	}

	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "fixvet: %d finding(s)\n", len(fresh))
		os.Exit(1)
	}
	if !*jsonOut {
		msg := fmt.Sprintf("fixvet: %d packages clean (%d analyzers)", len(pkgs), len(selected))
		if suppressed > 0 {
			msg += fmt.Sprintf(", %d baselined finding(s)", suppressed)
		}
		fmt.Println(msg)
	}
}

// selectAnalyzers resolves the -run flag against the registered suite.
func selectAnalyzers(runList string) ([]*Analyzer, error) {
	if runList == "" {
		return analyzers, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
