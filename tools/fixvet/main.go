// Command fixvet is the project's static-analysis suite: a stdlib-only
// (go/ast + go/parser + go/types, no x/tools) multi-analyzer driver that
// machine-checks the invariants the PRs introduced by convention.
//
// The flat passes:
//
//   - errcmp: sentinel errors matched with errors.Is, wrapped with %w,
//     Close() errors never silently dropped
//   - lockcheck: `// guarded by mu` fields locked in exported methods,
//     no self-deadlock, leaf mutexes never held across storage/os I/O
//   - ctxcheck: ctx first and named ctx, context.Background() only in
//     Foo → FooCtx delegating wrappers, Foo/FooCtx pairs stay thin
//   - obscheck: nil-guarded *obs.Trace writes, paired phase timers,
//     centralized unique expvar registration
//   - depcheck: stdlib-or-module-internal imports only, one-way layering
//   - doccheck: package and exported docs (covers tools/ too)
//
// The flow-aware passes, built on the tools/fixvet/cfg control-flow
// layer:
//
//   - lockorder: the declared lock hierarchy (`// lockcheck: order N`)
//     holds on every path, through a lightweight module call graph
//   - paircheck: acquire/release pairing (mutexes, Generation pins,
//     View.Close, context cancel funcs, phase timers) proven on every
//     CFG path, including early returns and explicit panics
//   - atomiccheck: atomically-accessed fields are never touched
//     non-atomically; `// immutable after publish` fields are written
//     only in builders
//   - sendcheck: channel operations inside spawned goroutines are
//     cancellable or provably bounded (goroutine-leak heuristics)
//
// Usage (normally via `make lint`):
//
//	go run ./tools/fixvet [-root dir] [-run a,b] [-format text|json|github]
//	                      [-baseline file] [-severity error|warning] [-list] [-v]
//
// Exits 1 with one finding per line when anything outside the baseline
// is flagged. The baseline (tools/fixvet/baseline.txt) holds justified,
// commented allowlist entries in "analyzer<TAB>file<TAB>message" form;
// stale entries are reported so the file can only shrink.
//
// See docs/STATIC_ANALYSIS.md for each rule's motivating bug and the
// annotation vocabulary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root to analyze")
		runList  = flag.String("run", "", "comma-separated analyzer names (default: all)")
		format   = flag.String("format", "text", "output format: text, json (array on stdout), or github (workflow annotations)")
		jsonOut  = flag.Bool("json", false, "shorthand for -format=json")
		baseline = flag.String("baseline", "", "baseline file (default: <root>/tools/fixvet/baseline.txt)")
		sevGate  = flag.String("severity", SevWarning, "minimum severity that fails the run: 'warning' (default, everything fails) or 'error'")
		list     = flag.Bool("list", false, "list analyzers and exit")
		verbose  = flag.Bool("v", false, "report per-pass wall time on stderr")
	)
	flag.Parse()

	if *jsonOut {
		*format = "json"
	}
	switch *format {
	case "text", "json", "github":
	default:
		fmt.Fprintf(os.Stderr, "fixvet: unknown -format %q (text, json, github)\n", *format)
		os.Exit(2)
	}

	if *list {
		listAnalyzers(os.Stdout)
		return
	}

	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}

	l, err := NewLoader(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}

	times := newPassTimes(selected)
	findings := runAnalyzers(l, pkgs, selected, times)

	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join(l.Root, "tools", "fixvet", "baseline.txt")
	}
	base, err := loadBaseline(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fixvet:", err)
		os.Exit(2)
	}
	fresh, suppressed, stale := applyBaseline(findings, base)

	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if fresh == nil {
			fresh = []Finding{}
		}
		if err := enc.Encode(fresh); err != nil {
			fmt.Fprintln(os.Stderr, "fixvet:", err)
			os.Exit(2)
		}
	case "github":
		for _, f := range fresh {
			kind := "error"
			if f.Severity == SevWarning {
				kind = "warning"
			}
			// https://docs.github.com/actions/reference/workflow-commands :
			// property values need %, CR and LF percent-escaped.
			fmt.Printf("::%s file=%s,line=%d,col=%d,title=fixvet %s::%s\n",
				kind, f.File, f.Line, f.Col, f.Analyzer, githubEscape(f.Message))
		}
	default:
		for _, f := range fresh {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "fixvet: stale baseline entry (fixed? remove it): %s\n", strings.ReplaceAll(s, "\t", " | "))
	}
	if *verbose {
		times.report(os.Stderr)
	}

	failing := 0
	for _, f := range fresh {
		if *sevGate == SevError && f.Severity != SevError {
			continue
		}
		failing++
	}
	if failing > 0 {
		fmt.Fprintf(os.Stderr, "fixvet: %d finding(s)\n", len(fresh))
		os.Exit(1)
	}
	if *format == "text" {
		msg := fmt.Sprintf("fixvet: %d packages clean (%d analyzers)", len(pkgs), len(selected))
		if suppressed > 0 {
			msg += fmt.Sprintf(", %d baselined finding(s)", suppressed)
		}
		if len(fresh) > 0 {
			msg += fmt.Sprintf(", %d sub-threshold warning(s)", len(fresh))
		}
		fmt.Println(msg)
	}
}

// listAnalyzers writes the -list table: one line per registered pass
// with its severity and doc string.
func listAnalyzers(w io.Writer) {
	for _, a := range analyzers {
		fmt.Fprintf(w, "%-12s [%s] %s\n", a.Name, a.severityLevel(), a.Doc)
	}
}

// githubEscape applies the workflow-command data escaping rules.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// selectAnalyzers resolves the -run flag against the registered suite.
func selectAnalyzers(runList string) ([]*Analyzer, error) {
	if runList == "" {
		return analyzers, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
