// Command doclint enforces the repository's documentation conventions:
// every package under internal/ and the public fix package must carry a
// package doc comment, and every exported symbol of the public fix
// package must be documented. It parses source with go/parser only (no
// build), so it runs anywhere the source tree does.
//
// Usage (normally via `make docs`):
//
//	go run ./tools/doclint [root]
//
// Exits 1 with one line per violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var violations []string

	pkgDirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	for _, dir := range pkgDirs {
		v, err := lintDir(root, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		violations = append(violations, v...)
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("doclint: %d packages clean\n", len(pkgDirs))
}

// packageDirs returns every directory under internal/ plus fix/,
// relative to root, that contains at least one non-test .go file.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, sub := range []string{"internal", "fix"} {
		err := filepath.WalkDir(filepath.Join(root, sub), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir, _ := filepath.Rel(root, filepath.Dir(path))
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func lintDir(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var violations []string
	for name, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			violations = append(violations, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		// Exported-symbol docs are required only for the public API.
		if dir == "fix" {
			violations = append(violations, undocumentedExports(fset, pkg)...)
		}
	}
	return violations, nil
}

func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}

// undocumentedExports reports exported top-level declarations with no
// doc comment. Fields and methods of documented types are not checked;
// the bar is "godoc shows prose for every name in the index".
func undocumentedExports(fset *token.FileSet, pkg *ast.Package) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s is undocumented", p.Filename, p.Line, kind, name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						// Only flag methods on exported receivers.
						if !exportedRecv(d.Recv) {
							continue
						}
						kind = "method"
					}
					report(d.Pos(), kind, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(n.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}
