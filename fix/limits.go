package fix

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// ErrBudgetExceeded reports that a query was stopped by one of its
// resource limits (see Limits); test with errors.Is. The wrapped
// message names the exhausted dimension. A query killed by its deadline
// returns context.DeadlineExceeded instead — budgets bound work,
// deadlines bound time.
var ErrBudgetExceeded = core.ErrBudgetExceeded

// ErrPanic reports that a panic inside the engine was contained by a
// recovery barrier and converted into an error; test with errors.Is.
// After a contained panic the in-memory index is conservatively marked
// degraded (queries keep answering exactly via the scan fallback;
// RebuildIndex restores it), and the panics_recovered counter is
// incremented.
var ErrPanic = errors.New("fix: panic recovered")

// ErrBadQuery reports a syntactically invalid XPath expression; test
// with errors.Is to classify client errors (an HTTP 400) apart from
// engine faults.
var ErrBadQuery = xpath.ErrSyntax

// ErrQueryLimit reports an XPath expression rejected for exceeding the
// query parse limits (length, steps, predicates, nesting).
var ErrQueryLimit = xpath.ErrLimit

// ErrDocumentLimit reports a document rejected by AddDocument for
// exceeding the document parse limits (depth, token size, fan-out,
// node count, total input bytes); see Options.ParseLimits.
var ErrDocumentLimit = xmltree.ErrLimit

// Limits caps what one query may consume. The zero value imposes
// nothing and costs nothing: ungoverned queries run the exact pre-
// governance pipeline. Set per query with WithLimits, or for every
// query on a DB with Options.Limits.
type Limits struct {
	// Timeout is the per-query deadline. The query's context is wrapped
	// with context.WithTimeout, so expiry surfaces as
	// context.DeadlineExceeded — promptly, even mid-refinement: the
	// refinement loop re-checks the context every few dozen node visits.
	Timeout time.Duration
	// MaxRefineNodes caps the subtree nodes NoK refinement may visit
	// across the whole query (the nodes_visited unit). It is the paper's
	// false-positive problem turned into a control: when the feature
	// filter is unselective, refinement cost explodes, and this is the
	// fuse.
	MaxRefineNodes int64
	// MaxCandidates caps entries surviving the feature filter; the
	// B-tree range scan aborts early once crossed.
	MaxCandidates int
	// MaxResults caps total output-node matches; refinement stops once
	// the running total crosses it.
	MaxResults int
}

// ParseLimits bounds documents accepted by AddDocument, mirroring the
// parser's hardening knobs: zero fields keep the built-in defaults
// (generous, but finite), negative fields disable the bound. See
// docs/ROBUSTNESS.md for the defaults.
type ParseLimits struct {
	MaxDepth      int // element nesting
	MaxTokenBytes int // one element name or text node
	MaxChildren   int // fan-out of one element
	MaxNodes      int // total tree nodes
	MaxBytes      int // total serialized input of one document
}

// WithLimits sets this query's resource limits.
//
// Deprecated: use QueryLimits, the canonical spelling in the unified
// QueryOption set. WithLimits remains as an alias.
func WithLimits(l Limits) QueryOption { return QueryLimits(l) }

// WithScanOnly forces this query to bypass the index.
//
// Deprecated: use ScanOnly, the canonical spelling in the unified
// QueryOption set. WithScanOnly remains as an alias.
func WithScanOnly() QueryOption { return ScanOnly() }

// limitsFor resolves the effective limits for one query: the per-query
// option wins wholesale, otherwise the DB default.
func (db *DB) limitsFor(cfg *queryConfig) Limits {
	if cfg.limitsSet {
		return cfg.limits
	}
	return db.obsOpts.Limits
}

// coreLimits converts the public limits into the engine's form (the
// deadline is carried by the context instead).
func coreLimits(l Limits) core.Limits {
	return core.Limits{
		MaxRefineNodes: l.MaxRefineNodes,
		MaxCandidates:  l.MaxCandidates,
		MaxResults:     l.MaxResults,
	}
}

// contain is the panic-containment barrier deferred at every public
// entry point: a panic below the API becomes an error wrapping ErrPanic
// instead of crashing the caller's process. Worker-pool panics arrive
// already converted (par recovers them in the worker); contain gives
// both forms the same accounting — the panics_recovered counter — and,
// when degrade is set, marks the index degraded, because a panic
// mid-query may have left shared in-memory state (pager cache, health
// bookkeeping) inconsistent. Build paths pass degrade=false: the index
// being replaced was not touched.
func (db *DB) contain(op string, degrade bool, errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%w: %s: %v\n%s", ErrPanic, op, r, debug.Stack())
	} else if *errp == nil || !errors.Is(*errp, par.ErrPanic) {
		return
	} else {
		*errp = fmt.Errorf("%w: %s: %v", ErrPanic, op, *errp)
	}
	obs.Default().ObservePanicRecovered()
	if ix := db.indexRef(); degrade && ix != nil {
		ix.Degrade(*errp)
		// Republish so generations pinned from now on carry the degraded
		// health and route to the exact scan fallback. Views pinned before
		// the panic keep their (possibly inconsistent) image, but their
		// in-flight queries are already guarded by their own barriers.
		db.publish()
	}
}

// observeQueryError classifies a failed query into the registry's
// rejection counters (on top of the plain query_errors count).
func observeQueryError(err error) {
	reg := obs.Default()
	reg.ObserveQueryError()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		reg.ObserveDeadlineExceeded()
	case errors.Is(err, ErrBudgetExceeded):
		reg.ObserveBudgetExceeded()
	}
}

// scanBudget returns the refinement budget for an index-less scan, or
// nil when neither a node limit nor a cancellable context is in play
// (the nil budget keeps the default scan free of per-node accounting).
func scanBudget(ctx context.Context, l Limits) *nok.Budget {
	if l.MaxRefineNodes <= 0 && ctx.Done() == nil {
		return nil
	}
	return nok.NewBudget(ctx, l.MaxRefineNodes)
}

// mapBudgetErr converts nok budget exhaustion into the public typed
// error; context errors pass through as the standard sentinels.
func mapBudgetErr(err error) error {
	if errors.Is(err, nok.ErrBudget) {
		return fmt.Errorf("%w: refinement nodes", ErrBudgetExceeded)
	}
	return err
}

// resultCapErr checks a running output-match total against MaxResults.
// Counts are non-negative, so any partial sum over the cap proves the
// full query would exceed it too.
func resultCapErr(total int64, l Limits) error {
	if l.MaxResults > 0 && total > int64(l.MaxResults) {
		return fmt.Errorf("%w: results %d exceed limit %d", ErrBudgetExceeded, total, l.MaxResults)
	}
	return nil
}

// parseLimits converts the DB's configured document limits into the
// parser's form.
func (db *DB) parseLimits() xmltree.ParseLimits {
	l := db.obsOpts.ParseLimits
	return xmltree.ParseLimits{
		MaxDepth:      l.MaxDepth,
		MaxTokenBytes: l.MaxTokenBytes,
		MaxChildren:   l.MaxChildren,
		MaxNodes:      l.MaxNodes,
		MaxBytes:      l.MaxBytes,
	}
}
