package fix_test

import (
	"fmt"
	"log"

	"github.com/fix-index/fix/fix"
)

func Example() {
	db, err := fix.CreateMem()
	if err != nil {
		log.Fatal(err)
	}
	docs := []string{
		`<article><author><phone>1</phone><email>a@x</email></author></article>`,
		`<article><author><email>b@x</email></author></article>`,
		`<book><author><address>somewhere</address></author></book>`,
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.BuildIndex(fix.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`//author[phone][email]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d match among %d indexed documents\n", res.Count, res.Entries)
	// Output: 1 match among 3 indexed documents
}

func ExampleDB_QueryDocuments() {
	db, _ := fix.CreateMem()
	db.AddDocumentString(`<article><title>one</title></article>`)
	db.AddDocumentString(`<article><title>two</title><note/></article>`)
	db.AddDocumentString(`<book><title>three</title></book>`)
	db.BuildIndex(fix.IndexOptions{})
	ids, _ := db.QueryDocuments(`//article/title`)
	fmt.Println(ids)
	// Output: [0 1]
}

func ExampleDB_Metrics() {
	db, _ := fix.CreateMem()
	db.AddDocumentString(`<a><b/><c/></a>`)
	db.AddDocumentString(`<a><b/></a>`)
	db.AddDocumentString(`<a><c/></a>`)
	db.AddDocumentString(`<a/>`)
	db.BuildIndex(fix.IndexOptions{})
	m, _ := db.Effectiveness(`//a[b][c]`)
	fmt.Printf("sel=%.2f pp=%.2f\n", m.Selectivity, m.PruningPower)
	// Output: sel=0.75 pp=0.75
}

func ExampleDB_Query_values() {
	db, _ := fix.CreateMem()
	db.AddDocumentString(`<rec><publisher>Springer</publisher></rec>`)
	db.AddDocumentString(`<rec><publisher>ACM</publisher></rec>`)
	// Values: true integrates hashed text nodes into the structural
	// index (paper §4.6), so equality predicates prune via the index.
	db.BuildIndex(fix.IndexOptions{Values: true})
	res, _ := db.Query(`//rec[publisher="Springer"]`)
	fmt.Println(res.Count)
	// Output: 1
}
