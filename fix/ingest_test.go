package fix

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/storage"
)

// withFaultFiles routes the DB's own file I/O (record heap and ingest
// log) through pl, mirroring the core crash tests' faultFS seam, and
// returns a restore function standing in for the process reboot: after
// the "crash", recovery runs against the real files.
func withFaultFiles(pl *storage.FaultPlan) (restore func()) {
	origCreate, origOpen := fileCreate, fileOpen
	fileCreate = func(path string) (storage.File, error) {
		f, err := storage.Create(path)
		if err != nil {
			return nil, err
		}
		return pl.Wrap(f), nil
	}
	fileOpen = func(path string) (storage.File, error) {
		f, err := storage.Open(path)
		if err != nil {
			return nil, err
		}
		return pl.Wrap(f), nil
	}
	return func() { fileCreate, fileOpen = origCreate, origOpen }
}

func mustExist(t *testing.T, db *DB, expr string, want bool) {
	t.Helper()
	ok, err := db.Exists(expr)
	if err != nil {
		t.Fatalf("Exists(%s): %v", expr, err)
	}
	if ok != want {
		t.Errorf("Exists(%s) = %v, want %v", expr, ok, want)
	}
}

func TestIngestBatchCtx(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.IngestBatchCtx(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) {
		t.Fatalf("got %d ids for %d docs", len(ids), len(docs))
	}
	for i, id := range ids {
		if id != uint32(i) {
			t.Fatalf("ids = %v, want sequential from 0", ids)
		}
	}
	mustExist(t, db, "//author[phone]", true)

	// Empty and invalid batches.
	if ids, err := db.IngestBatchCtx(context.Background(), nil); err != nil || ids != nil {
		t.Fatalf("empty batch: %v, %v", ids, err)
	}
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>", "<broken"}); err == nil {
		t.Fatal("batch with a parse error was accepted")
	}
	if db.NumDocuments() != len(docs) {
		t.Fatalf("rejected batch changed the store: %d documents", db.NumDocuments())
	}
}

func TestDeleteDocument(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	pre, err := db.Query("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteDocument(1); err != nil { // the only doc with a phone
		t.Fatal(err)
	}
	if db.NumDocuments() != len(docs) {
		t.Errorf("NumDocuments = %d after delete, want %d (tombstoned, not compacted)", db.NumDocuments(), len(docs))
	}
	if db.DeletedDocuments() != 1 {
		t.Errorf("DeletedDocuments = %d, want 1", db.DeletedDocuments())
	}
	mustExist(t, db, "//author[phone]", false)
	res, err := db.Query("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanFallback {
		t.Error("delete degraded the index")
	}
	if res.Count != pre.Count-1 {
		t.Errorf("count after delete = %d, want %d", res.Count, pre.Count-1)
	}
	// Indexed and scan-only answers agree on the tombstoned collection.
	scan, err := db.Query("//author[email]", WithScanOnly())
	if err != nil {
		t.Fatal(err)
	}
	if scan.Count != res.Count {
		t.Errorf("scan count %d != indexed count %d", scan.Count, res.Count)
	}
	ids, err := db.QueryDocuments("//author")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == 1 {
			t.Error("QueryDocuments returned a deleted document")
		}
	}
	// Idempotent; out-of-range fails.
	if err := db.DeleteDocument(1); err != nil {
		t.Errorf("re-delete: %v", err)
	}
	if err := db.DeleteDocument(uint32(len(docs))); err == nil {
		t.Error("delete out of range succeeded")
	}
}

func TestIngesterBasic(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	ing := db.NewIngester(IngestConfig{})
	ctx := context.Background()

	recs, err := ing.AddBatch(ctx, docs[:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0] != 0 || recs[1] != 1 || recs[2] != 2 {
		t.Fatalf("AddBatch ids = %v, want [0 1 2]", recs)
	}
	id, err := ing.Add(ctx, docs[3])
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("Add id = %d, want 3", id)
	}
	if err := ing.Delete(ctx, recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if db.NumDocuments() != 4 || db.DeletedDocuments() != 1 {
		t.Fatalf("have %d docs / %d deleted, want 4 / 1", db.NumDocuments(), db.DeletedDocuments())
	}
	mustExist(t, db, "//author[phone]", false)

	if _, err := ing.Add(ctx, "<broken"); err == nil {
		t.Error("parse error accepted")
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := ing.Add(ctx, "<a/>"); !errors.Is(err, ErrIngesterClosed) {
		t.Errorf("Add after Close = %v, want ErrIngesterClosed", err)
	}
	if err := ing.Delete(ctx, 0); !errors.Is(err, ErrIngesterClosed) {
		t.Errorf("Delete after Close = %v, want ErrIngesterClosed", err)
	}
	if err := ing.Flush(ctx); !errors.Is(err, ErrIngesterClosed) {
		t.Errorf("Flush after Close = %v, want ErrIngesterClosed", err)
	}
}

func TestIngestBackpressure(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	ing := db.NewIngester(IngestConfig{QueueDepth: 2, EnqueueWait: -1})
	defer func() { _ = ing.Close() }()
	before := db.Snapshot().IngestQueueFull

	// Stall the committer on the ingest lock, so the queue cannot drain.
	db.ingestMu.Lock()
	accepted, rejected := 0, 0
	for i := 0; i < 6; i++ {
		p, err := db.insertOp(fmt.Sprintf("<d><v>%d</v></d>", i))
		if err != nil {
			t.Fatal(err)
		}
		switch err := ing.enqueue(context.Background(), p); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrIngestQueueFull):
			rejected++
		default:
			t.Fatalf("enqueue: %v", err)
		}
	}
	db.ingestMu.Unlock()

	// Queue depth 2 plus at most one operation already in the
	// committer's hands.
	if accepted < 2 || accepted > 3 {
		t.Errorf("accepted %d operations on a depth-2 queue", accepted)
	}
	if rejected == 0 {
		t.Error("no operation hit backpressure")
	}
	// Flush competes with the backlog for the still-full queue
	// (EnqueueWait < 0 fails fast), so retry until it fits.
	for {
		err := ing.Flush(context.Background())
		if err == nil {
			break
		}
		if !errors.Is(err, ErrIngestQueueFull) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	if db.NumDocuments() != accepted {
		t.Errorf("committed %d documents, accepted %d", db.NumDocuments(), accepted)
	}
	// Every rejection counted (retried Flushes may add more).
	if got := db.Snapshot().IngestQueueFull - before; got < int64(rejected) {
		t.Errorf("queue-full counter grew by %d, want at least %d", got, rejected)
	}
}

func TestIngestRebuildRequiredDegrades(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(IndexOptions{Values: true}); err != nil {
		t.Fatal(err)
	}
	// A document with element labels the value-hash range cannot absorb:
	// it must still be stored and acknowledged; the index degrades.
	id, err := db.AddDocumentString(`<zzz><qqq>new</qqq></zzz>`)
	if err != nil {
		t.Fatalf("ingest across a rebuild boundary failed: %v", err)
	}
	if id != uint32(len(docs)) {
		t.Fatalf("id = %d, want %d", id, len(docs))
	}
	health := db.IndexHealth()
	if health == nil || !errors.Is(health, ErrRebuildRequired) {
		t.Fatalf("IndexHealth = %v, want an error wrapping ErrRebuildRequired", health)
	}
	res, err := db.Query("//zzz")
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScanFallback || res.Count != 1 {
		t.Fatalf("query on degraded index: count=%d fallback=%v, want 1/true", res.Count, res.ScanFallback)
	}
	if err := db.RebuildIndex(); err != nil {
		t.Fatal(err)
	}
	if db.IndexHealth() != nil {
		t.Fatalf("rebuilt index unhealthy: %v", db.IndexHealth())
	}
	res, err = db.Query("//zzz")
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanFallback || res.Count != 1 {
		t.Fatalf("query after rebuild: count=%d fallback=%v, want 1/false", res.Count, res.ScanFallback)
	}
}

func TestIngestLogLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "fix.ingest")
	if _, err := db.AddDocumentString(docs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Fatal("bulk-load AddDocument created the ingest log")
	}
	if db.IngestLag() != 0 {
		t.Fatalf("IngestLag = %d before any streaming ingest", db.IngestLag())
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}

	ids, err := db.IngestBatchCtx(context.Background(), docs[1:3])
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v, want [1 2]", ids)
	}
	if _, err := os.Stat(walPath); err != nil {
		t.Fatalf("streaming ingest did not create the ingest log: %v", err)
	}
	if db.IngestLag() != 2 {
		t.Fatalf("IngestLag = %d after a 2-op batch, want 2", db.IngestLag())
	}
	if err := db.DeleteDocument(ids[0]); err != nil {
		t.Fatal(err)
	}
	// With a live log, plain AddDocument joins the durable path.
	if _, err := db.AddDocumentString(docs[3]); err != nil {
		t.Fatal(err)
	}
	if db.IngestLag() != 4 {
		t.Fatalf("IngestLag = %d, want 4", db.IngestLag())
	}
	snap := db.Snapshot()
	if snap.IngestLag != 4 || snap.DocumentsDeleted != 1 {
		t.Fatalf("snapshot lag/deleted = %d/%d, want 4/1", snap.IngestLag, snap.DocumentsDeleted)
	}

	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if db.IngestLag() != 0 {
		t.Fatalf("IngestLag = %d after Save, want 0", db.IngestLag())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if re.NumDocuments() != 4 || re.DeletedDocuments() != 1 {
		t.Fatalf("reopened: %d docs / %d deleted, want 4 / 1", re.NumDocuments(), re.DeletedDocuments())
	}
	if re.IngestLag() != 0 {
		t.Fatalf("reopened IngestLag = %d, want 0", re.IngestLag())
	}
	mustExist(t, re, "//author[phone]", false) // docs[1] stayed deleted
	mustExist(t, re, "//author[address]", true)
}

func TestIngestReplayOnOpen(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddDocumentString(docs[0]); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged but never Saved: the log alone protects these.
	if _, err := db.IngestBatchCtx(context.Background(), docs[1:3]); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteDocument(0); err != nil {
		t.Fatal(err)
	}
	before := db.Snapshot().IngestReplayed
	if err := db.Close(); err != nil { // crash stand-in: no Save
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if got := db.Snapshot().IngestReplayed - before; got != 3 {
		t.Errorf("replayed counter grew by %d, want 3", got)
	}
	if re.NumDocuments() != 3 || re.DeletedDocuments() != 1 {
		t.Fatalf("replayed: %d docs / %d deleted, want 3 / 1", re.NumDocuments(), re.DeletedDocuments())
	}
	if re.IngestLag() != 0 {
		t.Fatalf("IngestLag = %d after replay, want 0 (Open absorbs the log)", re.IngestLag())
	}
	// The replay re-indexed incrementally: exact answers, no fallback.
	res, err := re.Query("//title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 { // docs[1] and docs[2]; docs[0] deleted
		t.Errorf("count = %d, want 2", res.Count)
	}
	if res.ScanFallback {
		t.Error("replayed index fell back to scanning")
	}
	mustExist(t, re, "//author[phone]", true)

	// Open already absorbed the log into the base commit, so a second
	// reopen replays nothing.
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re2.Close() }()
	if re2.NumDocuments() != 3 || re2.DeletedDocuments() != 1 || re2.IngestLag() != 0 {
		t.Fatalf("second reopen: %d docs / %d deleted / lag %d", re2.NumDocuments(), re2.DeletedDocuments(), re2.IngestLag())
	}
}

// ingestScript drives a fixed sequence of group commits and reports how
// far it got: the number of fully acknowledged steps.
//
//	step 1: batch insert <u0/>, <u1/>
//	step 2: delete the base document <base0/>
//	step 3: batch insert <u2/>
func ingestScript(db *DB) (ackedSteps int, err error) {
	if _, err = db.IngestBatchCtx(context.Background(), []string{"<u0/>", "<u1/>"}); err != nil {
		return 0, err
	}
	if err = db.DeleteDocument(0); err != nil {
		return 1, err
	}
	if _, err = db.IngestBatchCtx(context.Background(), []string{"<u2/>"}); err != nil {
		return 2, err
	}
	return 3, nil
}

// setupIngestBase creates a DB under dir with two base documents.
func setupIngestBase(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"<base0/>", "<base1/>"} {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// checkIngestOutcome verifies the recovery oracle over a reopened DB:
// every acknowledged step is fully visible, every unattempted step fully
// absent. (An attempted-but-unacknowledged step may appear — the
// documented at-least-once window when a batch reached the disk but its
// fsync result was lost — so only the acknowledged floor and the
// attempted ceiling are asserted.)
func checkIngestOutcome(t *testing.T, db *DB, ackedSteps int, ctx string) {
	t.Helper()
	mustExist(t, db, "//base1", true)
	if ackedSteps >= 1 {
		mustExist(t, db, "//u0", true)
		mustExist(t, db, "//u1", true)
	}
	if ackedSteps >= 2 {
		mustExist(t, db, "//base0", false)
	}
	if ackedSteps >= 3 {
		mustExist(t, db, "//u2", true)
	}
	// Steps run strictly in order, so anything past the failed step was
	// never attempted and must not exist in any form.
	if ackedSteps < 2 {
		mustExist(t, db, "//u2", false)
	}
	if n := db.NumDocuments(); n < 2+2*min(ackedSteps, 1) || n > 5 {
		t.Errorf("%s: implausible document count %d for %d acked steps", ctx, n, ackedSteps)
	}
}

// TestIngestCrashSweep simulates a crash at every write operation of the
// streaming-ingest window — WAL creation, batch appends and fsyncs, heap
// applies — in plain and torn variants, then reopens the directory like
// a rebooted process and requires that no acknowledged operation is lost
// and nothing unattempted appears.
func TestIngestCrashSweep(t *testing.T) {
	// Dry run: learn the deterministic write-op count of the window.
	dry := &storage.FaultPlan{}
	restore := withFaultFiles(dry)
	dir := t.TempDir()
	db := setupIngestBase(t, dir)
	w1 := dry.Writes()
	if acked, err := ingestScript(db); err != nil || acked != 3 {
		t.Fatalf("dry run: acked %d steps, err %v", acked, err)
	}
	w2 := dry.Writes()
	restore()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if w2 <= w1 {
		t.Fatalf("ingest window did no writes (%d..%d)", w1, w2)
	}

	for n := w1 + 1; n <= w2; n++ {
		for _, torn := range []bool{false, true} {
			pl := &storage.FaultPlan{FailWrite: n, Torn: torn}
			restore := withFaultFiles(pl)
			dir := t.TempDir()
			db := setupIngestBase(t, dir)
			acked, err := ingestScript(db)
			if err == nil {
				t.Fatalf("write %d (torn=%t): expected an injected failure", n, torn)
			}
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("write %d (torn=%t): unexpected error: %v", n, torn, err)
			}
			_ = db.Close()
			restore() // "reboot": recovery sees the real files

			re, err := Open(dir)
			if err != nil {
				// The crash hit before the first group commit made the
				// database durable (labels.dict is written on the way to
				// the WAL): nothing was acknowledged, so there is
				// legitimately nothing to open.
				if acked == 0 && errors.Is(err, os.ErrNotExist) {
					continue
				}
				t.Fatalf("write %d (torn=%t): reopen: %v", n, torn, err)
			}
			ctx := fmt.Sprintf("write %d (torn=%t)", n, torn)
			checkIngestOutcome(t, re, acked, ctx)

			// The reopened DB is fully usable: Save absorbs the replayed
			// log and a further reopen is stable.
			if err := re.Save(); err != nil {
				t.Fatalf("%s: save after recovery: %v", ctx, err)
			}
			if re.IngestLag() != 0 {
				t.Errorf("%s: IngestLag = %d after Save", ctx, re.IngestLag())
			}
			if err := re.Close(); err != nil {
				t.Fatalf("%s: close: %v", ctx, err)
			}
			re2, err := Open(dir)
			if err != nil {
				t.Fatalf("%s: second reopen: %v", ctx, err)
			}
			checkIngestOutcome(t, re2, acked, ctx+" (saved)")
			_ = re2.Close()
		}
	}
}

// TestIngestBatchRollbackTransient injects one transient write fault at
// every point of a batch commit and requires all-or-nothing semantics on
// the live DB: either the batch was acknowledged and is fully visible,
// or it failed and nothing of it is visible — and in both cases the DB
// keeps accepting ingest afterwards (the disk recovered).
func TestIngestBatchRollbackTransient(t *testing.T) {
	dry := &storage.FaultPlan{}
	restore := withFaultFiles(dry)
	dir := t.TempDir()
	db := setupIngestBase(t, dir)
	w1 := dry.Writes()
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<u0/>", "<u1/>"}); err != nil {
		t.Fatal(err)
	}
	w2 := dry.Writes()
	restore()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for n := w1 + 1; n <= w2; n++ {
		pl := &storage.FaultPlan{FailWrite: n, OneShot: true}
		restore := withFaultFiles(pl)
		dir := t.TempDir()
		db := setupIngestBase(t, dir)
		_, err := db.IngestBatchCtx(context.Background(), []string{"<u0/>", "<u1/>"})
		if err == nil {
			// The fault landed on a write the commit can tolerate
			// (none currently; guard against future protocol changes).
			mustExist(t, db, "//u0", true)
			mustExist(t, db, "//u1", true)
		} else {
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("write %d: unexpected error: %v", n, err)
			}
			mustExist(t, db, "//u0", false)
			mustExist(t, db, "//u1", false)
			if db.NumDocuments() != 2 {
				t.Fatalf("write %d: rolled-back batch left %d documents", n, db.NumDocuments())
			}
		}
		// The transient fault has passed: ingest must work again.
		if _, err := db.IngestBatchCtx(context.Background(), []string{"<u2/>"}); err != nil {
			t.Fatalf("write %d: ingest after recovery: %v", n, err)
		}
		mustExist(t, db, "//u2", true)
		_ = db.Close()
		restore()

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("write %d: reopen: %v", n, err)
		}
		mustExist(t, re, "//u2", true)
		if err2 := re.Close(); err2 != nil {
			t.Fatal(err2)
		}
	}
}

// TestConcurrentIngestAndQuery runs writers (inserts and deletes through
// one Ingester) against readers (queries, Exists, snapshots) and checks
// the final state is exact. Run under -race, this is the data-race proof
// for the ingest/query lock protocol.
func TestConcurrentIngestAndQuery(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	ing := db.NewIngester(IngestConfig{MaxWait: 100 * time.Microsecond})
	ctx := context.Background()

	const writers = 4
	const perWriter = 24
	var wg sync.WaitGroup
	var deleted atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				doc := fmt.Sprintf(`<article><title>w%d-%d</title><author><email>e</email></author></article>`, w, i)
				rec, err := ing.Add(ctx, doc)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%4 == 3 {
					if err := ing.Delete(ctx, rec); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
					deleted.Add(1)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query("//article[author]/title"); err != nil {
					t.Errorf("reader query: %v", err)
					return
				}
				if _, err := db.Exists("//author[email]"); err != nil {
					t.Errorf("reader exists: %v", err)
					return
				}
				_ = db.Snapshot()
				_ = db.IngestLag()
				_ = ing.QueueLen()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	wantDocs := len(docs) + writers*perWriter
	if db.NumDocuments() != wantDocs {
		t.Fatalf("NumDocuments = %d, want %d", db.NumDocuments(), wantDocs)
	}
	if int64(db.DeletedDocuments()) != deleted.Load() {
		t.Fatalf("DeletedDocuments = %d, want %d", db.DeletedDocuments(), deleted.Load())
	}
	// Indexed and scan-only answers agree exactly on the final state.
	idx, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	scan, err := db.Query("//article[author]/title", WithScanOnly())
	if err != nil {
		t.Fatal(err)
	}
	if idx.ScanFallback {
		t.Error("index degraded during concurrent ingest")
	}
	if idx.Count != scan.Count {
		t.Fatalf("indexed count %d != scan count %d", idx.Count, scan.Count)
	}
	want := 2 + writers*perWriter - int(deleted.Load()) // base docs 0 and 1 match too
	if idx.Count != want {
		t.Fatalf("count = %d, want %d", idx.Count, want)
	}
}

// TestTombstonesPastLogBaseDroppedOnOpen simulates a crash inside Save
// after the tombstone sidecar was rewritten but before the ingest log
// was reset: fix.tomb then carries tombstones for records at or past
// the log's base, which the recovery truncation removes from the heap.
// Open must drop those tombstones (the deletes are still in the log and
// are re-applied by replay) instead of failing permanently.
func TestTombstonesPastLogBaseDroppedOnOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Record 0 predates the ingest log (AddDocument stays fsync-free
	// until a log exists); the durable batch then creates the log with
	// base 1 and appends record 1.
	if _, err := db.AddDocumentString("<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	ids, err := db.IngestBatchCtx(context.Background(), []string{"<c><d/></c>"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteDocument(ids[0]); err != nil { // past the base
		t.Fatal(err)
	}
	if err := db.DeleteDocument(0); err != nil { // before the base
		t.Fatal(err)
	}
	// Run Save's sub-steps up to (not including) the log reset, then
	// "crash": Close without Save keeps the log's contents.
	if err := db.store.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.saveDict(); err != nil {
		t.Fatal(err)
	}
	if err := db.saveTombs(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Save crashed before the log reset: %v", err)
	}
	defer re.Close()
	if re.NumDocuments() != 2 {
		t.Errorf("NumDocuments = %d, want 2", re.NumDocuments())
	}
	if re.DeletedDocuments() != 2 {
		t.Errorf("DeletedDocuments = %d, want 2", re.DeletedDocuments())
	}
	mustExist(t, re, "//b", false)
	mustExist(t, re, "//d", false)
}

// TestIngestReplayHonorsLooseParseLimits: a document admitted under
// custom limits looser than the parser defaults must replay on Open,
// which cannot know the original limits (they are not persisted).
func TestIngestReplayHonorsLooseParseLimits(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetOptions(Options{ParseLimits: ParseLimits{MaxDepth: -1}})
	const depth = 600 // over the default MaxDepth of 512
	deep := strings.Repeat("<a>", depth) + "x" + strings.Repeat("</a>", depth)
	if _, err := db.IngestBatchCtx(context.Background(), []string{deep}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // no Save: the log still guards the doc
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("Open failed to replay a document ingested under loose limits: %v", err)
	}
	defer re.Close()
	if re.NumDocuments() != 1 {
		t.Fatalf("NumDocuments = %d, want 1", re.NumDocuments())
	}
	if _, err := re.Document(0); err != nil {
		t.Fatalf("replayed document unreadable: %v", err)
	}
}

// TestBadDeleteDoesNotFailBatch: an out-of-range delete must be
// rejected individually — group commit coalesces unrelated callers, so
// it must not take their valid operations down with it.
func TestBadDeleteDoesNotFailBatch(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	ins, err := db.insertOp("<a><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	bad := &pendingOp{kind: core.IngestOpDelete, rec: 99, done: make(chan error, 1)}
	if err := db.commitPending(context.Background(), []*pendingOp{ins, bad}); err != nil {
		t.Fatalf("batch with one bad delete failed wholesale: %v", err)
	}
	if !errors.Is(bad.err, ErrUnknownDocument) {
		t.Fatalf("bad delete err = %v, want ErrUnknownDocument", bad.err)
	}
	if db.NumDocuments() != 1 {
		t.Fatalf("NumDocuments = %d, want 1 (insert sharing the batch must commit)", db.NumDocuments())
	}
	mustExist(t, db, "//b", true)
}

// TestIngesterBadDeleteDoesNotFailConcurrentAdds drives the same
// guarantee through the shared-ingester path a server exposes: one
// client's bad delete, coalesced with other clients' adds, fails only
// its own acknowledgment.
func TestIngesterBadDeleteDoesNotFailConcurrentAdds(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	ing := db.NewIngester(IngestConfig{MaxWait: 50 * time.Millisecond})
	defer ing.Close()
	ctx := context.Background()

	const adds = 8
	var wg sync.WaitGroup
	var delErr error
	addErrs := make([]error, adds)
	wg.Add(1)
	go func() {
		defer wg.Done()
		delErr = ing.Delete(ctx, 1<<30)
	}()
	for i := 0; i < adds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, addErrs[i] = ing.Add(ctx, "<a><b/></a>")
		}(i)
	}
	wg.Wait()
	if !errors.Is(delErr, ErrUnknownDocument) {
		t.Fatalf("bad delete = %v, want ErrUnknownDocument", delErr)
	}
	for i, err := range addErrs {
		if err != nil {
			t.Fatalf("add %d sharing the ingester failed: %v", i, err)
		}
	}
	if db.NumDocuments() != adds {
		t.Fatalf("NumDocuments = %d, want %d", db.NumDocuments(), adds)
	}
}
