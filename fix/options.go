package fix

import "context"

// A BuildOption configures one aspect of index construction for
// BuildIndexWith. Options are applied in order to a zero IndexOptions,
// so later options win; omitted aspects keep the paper's defaults. The
// functional form is forward-compatible: adding an option never breaks
// existing callers, unlike positional struct literals.
type BuildOption func(*IndexOptions)

// Workers bounds the worker pool used by index construction and by
// candidate refinement at query time. Zero means one worker per
// available CPU; 1 forces sequential execution. The index bytes
// produced are identical for every value.
func Workers(n int) BuildOption {
	return func(o *IndexOptions) { o.Workers = n }
}

// DepthLimit sets Algorithm 1's subpattern depth limit L: one depth-L
// subpattern is indexed per element. Use it for large documents; the
// paper uses 6.
func DepthLimit(l int) BuildOption {
	return func(o *IndexOptions) { o.DepthLimit = l }
}

// Clustered copies candidate subtrees into a key-ordered heap so
// refinement I/O is sequential, trading space for query time.
func Clustered() BuildOption {
	return func(o *IndexOptions) { o.Clustered = true }
}

// Values integrates text nodes into the structural index via hashing
// (paper §4.6), enabling index support for value-equality predicates.
func Values() BuildOption {
	return func(o *IndexOptions) { o.Values = true }
}

// Beta sets the value-hash range β used with Values; zero keeps the
// paper's default of 10.
func Beta(b uint32) BuildOption {
	return func(o *IndexOptions) { o.Beta = b }
}

// EdgeBudget caps the bisimulation graph size for eigenvalue
// computation; zero keeps the paper's default of 3000 edges.
func EdgeBudget(n int) BuildOption {
	return func(o *IndexOptions) { o.EdgeBudget = n }
}

// SpectrumK stores K extra eigenvalue magnitudes per entry and filters
// candidates component-wise (the paper's §3.3 refinement); zero
// disables it.
func SpectrumK(k int) BuildOption {
	return func(o *IndexOptions) { o.SpectrumK = k }
}

// PaperPruning selects the paper's literal pruning bound instead of the
// provably complete default; see DESIGN.md before enabling.
func PaperPruning() BuildOption {
	return func(o *IndexOptions) { o.PaperPruning = true }
}

// BuildIndexWith constructs the FIX index over all stored documents
// using functional options, replacing any previous index:
//
//	err := db.BuildIndexWith(ctx, fix.Workers(8), fix.DepthLimit(6))
//
// It is equivalent to BuildIndexCtx with the IndexOptions the options
// assemble; see BuildIndexCtx for cancellation semantics.
func (db *DB) BuildIndexWith(ctx context.Context, opts ...BuildOption) error {
	var o IndexOptions
	for _, opt := range opts {
		opt(&o)
	}
	return db.BuildIndexCtx(ctx, o)
}
