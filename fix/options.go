package fix

import "context"

// A BuildOption configures one aspect of index construction for
// BuildIndexWith. Options are applied in order to a zero IndexOptions,
// so later options win; omitted aspects keep the paper's defaults. The
// functional form is forward-compatible: adding an option never breaks
// existing callers, unlike positional struct literals.
type BuildOption func(*IndexOptions)

// Workers bounds the worker pool used by index construction and by
// candidate refinement at query time. Zero means one worker per
// available CPU; 1 forces sequential execution. The index bytes
// produced are identical for every value.
func Workers(n int) BuildOption {
	return func(o *IndexOptions) { o.Workers = n }
}

// DepthLimit sets Algorithm 1's subpattern depth limit L: one depth-L
// subpattern is indexed per element. Use it for large documents; the
// paper uses 6.
func DepthLimit(l int) BuildOption {
	return func(o *IndexOptions) { o.DepthLimit = l }
}

// Clustered copies candidate subtrees into a key-ordered heap so
// refinement I/O is sequential, trading space for query time.
func Clustered() BuildOption {
	return func(o *IndexOptions) { o.Clustered = true }
}

// Values integrates text nodes into the structural index via hashing
// (paper §4.6), enabling index support for value-equality predicates.
func Values() BuildOption {
	return func(o *IndexOptions) { o.Values = true }
}

// Beta sets the value-hash range β used with Values; zero keeps the
// paper's default of 10.
func Beta(b uint32) BuildOption {
	return func(o *IndexOptions) { o.Beta = b }
}

// EdgeBudget caps the bisimulation graph size for eigenvalue
// computation; zero keeps the paper's default of 3000 edges.
func EdgeBudget(n int) BuildOption {
	return func(o *IndexOptions) { o.EdgeBudget = n }
}

// SpectrumK stores K extra eigenvalue magnitudes per entry and filters
// candidates component-wise (the paper's §3.3 refinement); zero
// disables it.
func SpectrumK(k int) BuildOption {
	return func(o *IndexOptions) { o.SpectrumK = k }
}

// PaperPruning selects the paper's literal pruning bound instead of the
// provably complete default; see DESIGN.md before enabling.
func PaperPruning() BuildOption {
	return func(o *IndexOptions) { o.PaperPruning = true }
}

// BuildIndexWith constructs the FIX index over all stored documents
// using functional options, replacing any previous index:
//
//	err := db.BuildIndexWith(ctx, fix.Workers(8), fix.DepthLimit(6))
//
// It is equivalent to BuildIndexCtx with the IndexOptions the options
// assemble; see BuildIndexCtx for cancellation semantics.
func (db *DB) BuildIndexWith(ctx context.Context, opts ...BuildOption) error {
	var o IndexOptions
	for _, opt := range opts {
		opt(&o)
	}
	return db.BuildIndexCtx(ctx, o)
}

// Canonical query options. Every query method — Query, Exists,
// QueryDocuments and their Ctx variants, on DB and View alike — accepts
// the same QueryOption set, mirroring the BuildOption pattern above.
//
// Migration note: these replace the earlier WithTrace, WithScanOnly and
// WithLimits helpers, which remain as deprecated aliases. The rename is
// mechanical: WithTrace() → Trace(), WithScanOnly() → ScanOnly(),
// WithLimits(l) → QueryLimits(l).

// Trace requests a full execution trace for this query; it comes back
// on Result.Trace. Tracing costs a few timer reads and counter
// snapshots per query — cheap, but not free, which is why it is
// per-query opt-in. Exists and QueryDocuments accept but ignore it
// (they produce no Result to carry a trace).
func Trace() QueryOption {
	return func(c *queryConfig) { c.trace = true }
}

// ScanOnly forces this query to bypass the index and answer from a
// sequential scan of the primary store. The result is exact — a full
// refinement pass has no false negatives — just slower, and
// Result.ScanFallback is set. It exists for operational degradation:
// cmd/fixserve's circuit breaker routes queries here while the index is
// suspected faulty, trading speed for availability.
func ScanOnly() QueryOption {
	return func(c *queryConfig) { c.scanOnly = true }
}

// QueryLimits sets this query's resource limits, overriding the DB-wide
// Options.Limits entirely (fields are not merged).
func QueryLimits(l Limits) QueryOption {
	return func(c *queryConfig) {
		c.limits = l
		c.limitsSet = true
	}
}
