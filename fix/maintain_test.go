package fix

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/storage"
)

// flipByte inverts one byte of path in place, simulating latent on-disk
// corruption (bit rot) under a file the DB may hold open; on Linux both
// handles reach the same inode.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() <= off {
		t.Fatalf("%s is %d bytes; cannot corrupt offset %d", path, st.Size(), off)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckpointBoundsAndPublishes(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>", "<b/>"}); err != nil {
		t.Fatal(err)
	}
	if db.IngestLag() != 2 {
		t.Fatalf("IngestLag = %d before checkpoint", db.IngestLag())
	}
	preGen := db.GenerationID()
	before := db.LastCheckpoint()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.IngestLag() != 0 {
		t.Errorf("IngestLag = %d after checkpoint", db.IngestLag())
	}
	if !db.LastCheckpoint().After(before) {
		t.Error("LastCheckpoint did not advance")
	}
	if db.GenerationID() == preGen {
		t.Error("checkpoint did not publish a new generation")
	}
	// The WAL is reset to its bare header; further ingest grows it again.
	hdr := db.WALBytes()
	if hdr <= 0 {
		t.Fatalf("WALBytes = %d after checkpoint", hdr)
	}
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<c/>"}); err != nil {
		t.Fatal(err)
	}
	if db.WALBytes() <= hdr {
		t.Errorf("WALBytes did not grow past the header (%d)", db.WALBytes())
	}

	// Cancellation is observed between the off-lock phases.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.CheckpointCtx(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("CheckpointCtx(cancelled) = %v, want context.Canceled", err)
	}

	mem, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Checkpoint(); err == nil {
		t.Error("Checkpoint on an in-memory DB succeeded")
	}
}

// TestCheckpointCrashSweep simulates a crash at every write operation of
// the checkpoint window — the off-lock heap pre-sync, the locked commit,
// and the WAL reset — in plain and torn variants. The operations being
// absorbed were all acknowledged before the checkpoint started, so the
// oracle is strict: every reopen must show all of them, with no
// at-least-once slack.
func TestCheckpointCrashSweep(t *testing.T) {
	// Dry run: learn the deterministic write-op count of the window.
	dry := &storage.FaultPlan{}
	restore := withFaultFiles(dry)
	dir := t.TempDir()
	db := setupIngestBase(t, dir)
	if acked, err := ingestScript(db); err != nil || acked != 3 {
		t.Fatalf("dry run: acked %d steps, err %v", acked, err)
	}
	w1 := dry.Writes()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w2 := dry.Writes()
	restore()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if w2 <= w1 {
		t.Fatalf("checkpoint window did no writes (%d..%d)", w1, w2)
	}

	for n := w1 + 1; n <= w2; n++ {
		for _, torn := range []bool{false, true} {
			ctx := fmt.Sprintf("write %d (torn=%t)", n, torn)
			pl := &storage.FaultPlan{FailWrite: n, Torn: torn}
			restore := withFaultFiles(pl)
			dir := t.TempDir()
			db := setupIngestBase(t, dir)
			if acked, err := ingestScript(db); err != nil || acked != 3 {
				t.Fatalf("%s: setup acked %d steps, err %v", ctx, acked, err)
			}
			err := db.Checkpoint()
			if err == nil {
				t.Fatalf("%s: expected an injected failure", ctx)
			}
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s: unexpected error: %v", ctx, err)
			}
			// A failed checkpoint must not cost the live DB anything:
			// every acknowledged operation is still visible.
			checkIngestOutcome(t, db, 3, ctx+" (live)")
			_ = db.Close()
			restore() // "reboot": recovery sees the real files

			re, err := Open(dir)
			if err != nil {
				t.Fatalf("%s: reopen: %v", ctx, err)
			}
			checkIngestOutcome(t, re, 3, ctx)
			if err := re.Save(); err != nil {
				t.Fatalf("%s: save after recovery: %v", ctx, err)
			}
			if re.IngestLag() != 0 {
				t.Errorf("%s: IngestLag = %d after Save", ctx, re.IngestLag())
			}
			if err := re.Close(); err != nil {
				t.Fatalf("%s: close: %v", ctx, err)
			}
			re2, err := Open(dir)
			if err != nil {
				t.Fatalf("%s: second reopen: %v", ctx, err)
			}
			checkIngestOutcome(t, re2, 3, ctx+" (saved)")
			_ = re2.Close()
		}
	}
}

// scrubCorpus builds a persistent indexed DB big enough that its B-tree
// spans several pages, saves it, and returns its directory.
func scrubCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		doc := fmt.Sprintf("<article><sec%d><title>t%d</title><p>body</p></sec%d></article>", i%7, i, i%7)
		if _, err := db.AddDocumentString(doc); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestScrubCleanPass(t *testing.T) {
	dir := scrubCorpus(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rep, err := db.Scrub(ScrubConfig{Chunk: 8, Pause: -1})
	if err != nil {
		t.Fatalf("scrub of a clean DB: %v", err)
	}
	if rep.Damaged() {
		t.Fatalf("clean DB reported damage: %+v", rep)
	}
	if rep.IndexPages == 0 || rep.Records != 60 {
		t.Errorf("scrub coverage: %d pages, %d records; want >0 pages, 60 records", rep.IndexPages, rep.Records)
	}
}

// TestScrubDetectsIndexCorruption flips one byte in an on-disk B-tree
// page underneath a healthy running DB — latent bit rot the page cache
// cannot see. The scrub must find it, degrade the index so queries stay
// exact via the scan fallback, and a rebuild must restore full health.
func TestScrubDetectsIndexCorruption(t *testing.T) {
	dir := scrubCorpus(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.IndexHealth() != nil {
		t.Fatalf("index degraded before the scrub ran: %v", db.IndexHealth())
	}
	// Page 0 is the meta page; damage a later page's payload.
	flipByte(t, filepath.Join(dir, "fix.btree"), 4096+217)
	rep, err := db.Scrub(ScrubConfig{Chunk: 8, Pause: -1})
	if !rep.IndexDamaged {
		t.Fatalf("scrub missed the corrupted page (report %+v, err %v)", rep, err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub error = %v, want ErrCorrupt", err)
	}
	if db.IndexHealth() == nil {
		t.Fatal("scrub did not degrade the damaged index")
	}
	// Degraded means slower, never wrong: the scan fallback stays exact.
	res, err := db.Query("//article/sec3/title")
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScanFallback {
		t.Error("degraded query did not use the scan fallback")
	}
	if res.Count == 0 {
		t.Error("degraded query lost documents")
	}

	if err := db.RebuildIndex(); err != nil {
		t.Fatalf("rebuild of the damaged index: %v", err)
	}
	if err := db.IndexHealth(); err != nil {
		t.Fatalf("index still degraded after rebuild: %v", err)
	}
	rep, err = db.Scrub(ScrubConfig{Chunk: 8, Pause: -1})
	if err != nil || rep.Damaged() {
		t.Fatalf("scrub after rebuild: report %+v, err %v", rep, err)
	}
}

// TestMaintainerRepairsCorruptIndex is the closed loop: the background
// scrubber finds the flipped byte, degrades the index, and the next tick
// auto-rebuilds it — no operator in sight.
func TestMaintainerRepairsCorruptIndex(t *testing.T) {
	dir := scrubCorpus(t)
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	flipByte(t, filepath.Join(dir, "fix.btree"), 4096+217)
	m, err := db.StartMaintainer(context.Background(), MaintainConfig{
		Interval: 2 * time.Millisecond,
		WALOps:   -1, WALBytes: -1, MaxAge: -1, // isolate the scrub path
		RetryBackoff:  time.Millisecond,
		ScrubInterval: 5 * time.Millisecond,
		ScrubChunk:    8,
		ScrubPause:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	waitFor(t, 10*time.Second, "scrub to find the corruption and rebuild to repair it", func() bool {
		h := m.Health()
		return h.ScrubFindings >= 1 && h.AutoRebuilds >= 1 && db.IndexHealth() == nil
	})
	res, err := db.Query("//article/sec3/title")
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanFallback {
		t.Error("query still on the scan fallback after auto-rebuild")
	}
	if res.Count == 0 {
		t.Error("auto-rebuilt index lost documents")
	}
}

// TestScrubHealsWALDamage corrupts the acknowledged WAL prefix on disk.
// The in-memory state is unaffected, so the maintainer's response is a
// forced checkpoint: the guarded operations become durable in the base
// commit and the log is reset, after which a scrub comes back clean and
// a reopen shows every document.
func TestScrubHealsWALDamage(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<u0/>", "<u1/>"}); err != nil {
		t.Fatal(err)
	}
	// Offset 30 lands inside the first batch's payload (the header is 24
	// bytes, the batch length field 4 more), so the batch CRC breaks.
	flipByte(t, filepath.Join(dir, "fix.ingest"), 30)

	rep, err := db.Scrub(ScrubConfig{Pause: -1})
	if !rep.WALDamaged {
		t.Fatalf("scrub missed the WAL damage (report %+v, err %v)", rep, err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub error = %v, want ErrCorrupt", err)
	}
	mustExist(t, db, "//u0", true) // memory is fine; only the disk copy rotted

	m, err := db.StartMaintainer(context.Background(), MaintainConfig{
		Interval: 2 * time.Millisecond,
		WALOps:   -1, WALBytes: -1, MaxAge: -1,
		RetryBackoff:  time.Millisecond,
		ScrubInterval: 5 * time.Millisecond,
		ScrubPause:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "scrub to find the damage and a checkpoint to heal it", func() bool {
		h := m.Health()
		return h.ScrubFindings >= 1 && h.Checkpoints >= 1 && db.IngestLag() == 0
	})
	m.Close()
	rep, err = db.Scrub(ScrubConfig{Pause: -1})
	if err != nil || rep.Damaged() {
		t.Fatalf("scrub after healing: report %+v, err %v", rep, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after healing: %v", err)
	}
	defer re.Close()
	mustExist(t, re, "//u0", true)
	mustExist(t, re, "//u1", true)
}

// TestScrubDetectsTombstoneDamage rots the tombstone sidecar under a
// live DB. A corrupt sidecar would resurrect deleted documents at the
// next Open, so the scrubber must flag it while the process that knows
// the true deletion set is still running.
func TestScrubDetectsTombstoneDamage(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<u0/>", "<u1/>"}); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteDocument(0); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, filepath.Join(dir, "fix.tomb"), 4)
	rep, err := db.Scrub(ScrubConfig{Pause: -1})
	if !rep.TombDamaged {
		t.Fatalf("scrub missed the tombstone damage (report %+v, err %v)", rep, err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub error = %v, want ErrCorrupt", err)
	}
}

func TestMaintainerThresholdTriggers(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.StartMaintainer(context.Background(), MaintainConfig{
		Interval: 2 * time.Millisecond,
		WALOps:   3, WALBytes: -1, MaxAge: -1,
		ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>", "<b/>"}); err != nil {
		t.Fatal(err)
	}
	// Two ops sit below the threshold: the maintainer must leave them be.
	time.Sleep(50 * time.Millisecond)
	if got := m.Health().Checkpoints; got != 0 {
		t.Fatalf("checkpointed %d times below the ops threshold", got)
	}
	if db.IngestLag() != 2 {
		t.Fatalf("IngestLag = %d, want 2", db.IngestLag())
	}
	// The third op crosses it.
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<c/>"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "threshold checkpoint", func() bool {
		return db.IngestLag() == 0 && m.Health().Checkpoints >= 1
	})
	// Dirty tracking: with the WAL empty, further ticks cost nothing.
	base := m.Health().Checkpoints
	time.Sleep(50 * time.Millisecond)
	if got := m.Health().Checkpoints; got != base {
		t.Errorf("checkpointed a clean DB (%d -> %d)", base, got)
	}

	// An explicit request works regardless of thresholds.
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<d/>"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint(context.Background()); err != nil {
		t.Fatalf("explicit checkpoint: %v", err)
	}
	if db.IngestLag() != 0 {
		t.Errorf("IngestLag = %d after explicit checkpoint", db.IngestLag())
	}

	m.Close()
	if err := m.Checkpoint(context.Background()); !errors.Is(err, ErrMaintainerClosed) {
		t.Errorf("Checkpoint after Close = %v, want ErrMaintainerClosed", err)
	}
	m.Close() // idempotent
}

func TestMaintainerAgeTrigger(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.StartMaintainer(context.Background(), MaintainConfig{
		Interval: 2 * time.Millisecond,
		WALOps:   -1, WALBytes: -1,
		MaxAge:        10 * time.Millisecond,
		ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<a/>"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "age-triggered checkpoint", func() bool {
		return db.IngestLag() == 0
	})
}

// TestMaintainerSuspendsAndRecovers drives the checkpoint failure state
// machine end to end: a directory squatting on labels.dict's temp path
// makes every checkpoint fail, MaxFailures consecutive failures suspend
// the maintainer (serving and ingest continue), and once the blocker is
// removed the next half-open probe closes the circuit.
func TestMaintainerSuspendsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<u0/>"}); err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, "labels.dict.tmp")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}

	m, err := db.StartMaintainer(context.Background(), MaintainConfig{
		Interval: 2 * time.Millisecond,
		WALOps:   1, WALBytes: -1, MaxAge: -1,
		RetryBackoff:  time.Millisecond,
		MaxFailures:   2,
		ProbeInterval: 10 * time.Millisecond,
		ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	waitFor(t, 10*time.Second, "suspension after repeated failures", func() bool {
		return m.Health().State == MaintainSuspended
	})
	h := m.Health()
	if h.ConsecutiveFailures < 2 || h.CheckpointFailures < 2 {
		t.Errorf("suspended after %d consecutive / %d total failures, want >= 2", h.ConsecutiveFailures, h.CheckpointFailures)
	}
	if h.LastError == "" {
		t.Error("suspended with no LastError")
	}

	// Suspension means degraded durability, not an outage: reads and
	// writes both keep working from the current base + WAL.
	mustExist(t, db, "//u0", true)
	if _, err := db.IngestBatchCtx(context.Background(), []string{"<u1/>"}); err != nil {
		t.Fatalf("ingest while suspended: %v", err)
	}
	mustExist(t, db, "//u1", true)
	// An explicit checkpoint acts as a manual probe and reports the fault.
	if err := m.Checkpoint(context.Background()); err == nil {
		t.Error("explicit checkpoint succeeded while the disk is broken")
	}
	if db.Metrics().CheckpointFailures == 0 {
		t.Error("checkpoint failures not visible in Metrics")
	}

	// Heal the disk; the next probe recovers without intervention.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "recovery after the disk heals", func() bool {
		return m.Health().State == MaintainIdle && db.IngestLag() == 0
	})
	if m.Health().Checkpoints < 1 {
		t.Errorf("recovered with %d checkpoints", m.Health().Checkpoints)
	}
}

// TestBatchIngestMatchesSequential pins the parallel batch-indexing path
// to the sequential oracle: the same documents ingested one at a time
// and as one parallel-extracted batch must answer every query with the
// same document set, without scan fallbacks on either side.
func TestBatchIngestMatchesSequential(t *testing.T) {
	gen := func(i int) string {
		return fmt.Sprintf("<article><sec%d><p>x</p><q%d>y</q%d></sec%d></article>", i%5, i%3, i%3, i%5)
	}
	const extra = 48
	queries := []string{
		"//article/sec0/p", "//sec1[q2]", "//article[sec2]",
		"//q0", "//sec4/q1", "//article[author]/title",
	}

	seq := newTestDB(t, IndexOptions{})
	for i := 0; i < extra; i++ {
		if _, err := seq.AddDocumentString(gen(i)); err != nil {
			t.Fatal(err)
		}
	}

	bat := newTestDB(t, IndexOptions{})
	batch := make([]string, extra)
	for i := range batch {
		batch[i] = gen(i)
	}
	ids, err := bat.IngestBatchCtx(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != extra {
		t.Fatalf("batch acknowledged %d of %d documents", len(ids), extra)
	}

	for _, q := range queries {
		a, err := seq.QueryDocuments(q)
		if err != nil {
			t.Fatalf("%s (sequential): %v", q, err)
		}
		b, err := bat.QueryDocuments(q)
		if err != nil {
			t.Fatalf("%s (batch): %v", q, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: sequential %v != batch %v", q, a, b)
		}
		ra, err := seq.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := bat.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if ra.ScanFallback || rb.ScanFallback {
			t.Errorf("%s: scan fallback (sequential %t, batch %t)", q, ra.ScanFallback, rb.ScanFallback)
		}
	}
}

// TestStressMaintain mixes ingest, queries, explicit and background
// checkpoints, scrubs, and rebuilds over one DB. Run under -race it is
// the interleaving proof for the maintenance lock protocol:
//
//	FIX_STRESS=1 go test -race -run TestStressMaintain ./fix/
func TestStressMaintain(t *testing.T) {
	if os.Getenv("FIX_STRESS") == "" {
		t.Skip("set FIX_STRESS=1 to run the stress test")
	}
	dir := t.TempDir()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	m, err := db.StartMaintainer(context.Background(), MaintainConfig{
		Interval: time.Millisecond,
		WALOps:   8, WALBytes: -1,
		MaxAge:        5 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
		ScrubInterval: 3 * time.Millisecond,
		ScrubPause:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var inserted, deleted atomic.Int64
	fail := func(op string, err error) {
		select {
		case <-stop:
		default:
			t.Errorf("%s: %v", op, err)
		}
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := []string{
					fmt.Sprintf("<w%d><n%d>v</n%d></w%d>", w, i%9, i%9, w),
					fmt.Sprintf("<w%d><m%d>v</m%d></w%d>", w, i%9, i%9, w),
				}
				ids, err := db.IngestBatchCtx(ctx, batch)
				if err != nil {
					fail("ingest", err)
					return
				}
				inserted.Add(int64(len(ids)))
				if rng.Intn(4) == 0 {
					if err := db.DeleteDocument(ids[0]); err != nil {
						fail("delete", err)
						return
					}
					deleted.Add(1)
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query("//article[author]/title"); err != nil {
					fail("query", err)
					return
				}
				if _, err := db.Exists("//w1/n3"); err != nil {
					fail("exists", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // explicit checkpoint kicks racing the background policy
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				_ = m.Checkpoint(ctx)
			}
		}
	}()
	wg.Add(1)
	go func() { // foreground scrubs racing the background ones
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				// Index findings are expected here: a concurrent rebuild
				// rewrites the B-tree file in place, so a pass overlapping
				// it can see torn pages (see ScrubCtx). Heap, tombstone,
				// or WAL damage would be a real bug.
				rep, err := db.Scrub(ScrubConfig{Chunk: 16, Pause: -1})
				if rep.HeapDamaged || rep.TombDamaged || rep.WALDamaged {
					fail("scrub", fmt.Errorf("report %+v: %w", rep, err))
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // rebuilds racing everything
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				if err := db.RebuildIndex(); err != nil {
					fail("rebuild", err)
					return
				}
			}
		}
	}()

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()
	m.Close()

	// Quiesced: a scrub pass that overlapped the final rebuild may have
	// left a stale degradation latched; one rebuild (what the maintainer
	// would do next tick) restores full health deterministically.
	if db.IndexHealth() != nil {
		if err := db.RebuildIndex(); err != nil {
			t.Fatal(err)
		}
	}
	// The index must agree exactly with the scan on every query.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.IngestLag() != 0 {
		t.Fatalf("IngestLag = %d after final checkpoint", db.IngestLag())
	}
	for _, q := range []string{"//article[author]/title", "//w0/n3", "//w1[m2]", "//book/title"} {
		idx, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := db.Query(q, ScanOnly())
		if err != nil {
			t.Fatal(err)
		}
		if idx.ScanFallback {
			t.Errorf("%s: index query fell back to scan (health %v)", q, db.IndexHealth())
		}
		if idx.Count != scan.Count {
			t.Errorf("%s: index count %d != scan count %d", q, idx.Count, scan.Count)
		}
	}
	want := len(docs) + int(inserted.Load())
	if got := db.NumDocuments(); got != want {
		t.Errorf("NumDocuments = %d, want %d", got, want)
	}
	if got := db.DeletedDocuments(); int64(got) != deleted.Load() {
		t.Errorf("DeletedDocuments = %d, want %d", got, deleted.Load())
	}

	// And the survivors are durable.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.NumDocuments(); got != want {
		t.Errorf("NumDocuments after reopen = %d, want %d", got, want)
	}
}
