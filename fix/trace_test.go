package fix

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/datagen"
)

// traceDB builds an in-memory database large enough that every query
// phase does real work, using the XMark generator.
func traceDB(t *testing.T, opts IndexOptions) *DB {
	t.Helper()
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	if err := datagen.Populate(db.store, datagen.XMarkDataset, datagen.Config{Seed: 7, Scale: 0.02}); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(opts); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTraceReconcilesWithStorageStats checks that a traced query's
// storage counters equal the store's own before/after deltas, and that
// the B-tree counters equal the pager's deltas — tracing must report the
// exact I/O the query caused, not an estimate.
func TestTraceReconcilesWithStorageStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			db := newTestDB(t, IndexOptions{Workers: workers})
			st0 := db.store.Stats()
			bt0 := db.index.BTree().Stats()
			res, err := db.Query("//article[author]/title", WithTrace())
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Trace
			if tr == nil {
				t.Fatal("WithTrace returned a nil trace")
			}
			std := db.store.Stats().Sub(st0)
			btd := db.index.BTree().Stats().Sub(bt0)
			if tr.SeqReads != std.SeqReads || tr.RandomReads != std.RandomReads ||
				tr.CachedReads != std.CachedReads || tr.BytesRead != std.BytesRead ||
				tr.SubtreeReads != std.SubtreeReads || tr.SubtreeBytes != std.SubtreeBytes {
				t.Errorf("storage counters diverge: trace {seq %d rand %d cached %d bytes %d sub %d subB %d}, store delta %+v",
					tr.SeqReads, tr.RandomReads, tr.CachedReads, tr.BytesRead, tr.SubtreeReads, tr.SubtreeBytes, std)
			}
			if tr.PageReads != btd.PageReads || tr.CacheHits != btd.CacheHits || tr.Evictions != btd.Evictions {
				t.Errorf("btree counters diverge: trace {reads %d hits %d evict %d}, pager delta %+v",
					tr.PageReads, tr.CacheHits, tr.Evictions, btd)
			}
			if tr.Count != res.Count || tr.Candidates != res.Candidates ||
				tr.Entries != res.Entries || tr.Matched != res.MatchedEntries {
				t.Errorf("trace result counters %+v diverge from Result %+v", tr, res)
			}
			if tr.NodesVisited <= 0 {
				t.Errorf("NodesVisited = %d, want > 0", tr.NodesVisited)
			}
			if tr.Total <= 0 || tr.Workers < 1 {
				t.Errorf("implausible trace timing: total %v workers %d", tr.Total, tr.Workers)
			}
		})
	}
}

// TestTraceReconcilesWithMetrics checks that a trace's ent/cdt/rst
// counters produce exactly the §6.2 measures Metrics reports.
func TestTraceReconcilesWithMetrics(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	const q = "//author[email]"
	res, err := db.Query(q, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Effectiveness(q)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	sel := 1 - float64(tr.Matched)/float64(tr.Entries)
	pp := 1 - float64(tr.Candidates)/float64(tr.Entries)
	fpr := 0.0
	if tr.Candidates > 0 {
		fpr = 1 - float64(tr.Matched)/float64(tr.Candidates)
	}
	if sel != m.Selectivity || pp != m.PruningPower || fpr != m.FalsePosRatio {
		t.Errorf("trace-derived sel/pp/fpr = %v/%v/%v, Metrics = %v/%v/%v",
			sel, pp, fpr, m.Selectivity, m.PruningPower, m.FalsePosRatio)
	}
}

// TestTraceDeterministicAcrossWorkers checks that every counter (not
// the timings) of a trace is identical for sequential and parallel
// refinement — determinism is what makes traces comparable.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	var ref *QueryTrace
	for _, workers := range []int{1, 2, 8} {
		db := traceDB(t, IndexOptions{DepthLimit: 6, Workers: workers})
		res, err := db.QueryCtx(context.Background(), "//item[name]", WithTrace())
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace
		if ref == nil {
			ref = tr
			if tr.Candidates == 0 {
				t.Fatalf("test query produced no candidates; counters are vacuous")
			}
			continue
		}
		if tr.Entries != ref.Entries || tr.Scanned != ref.Scanned ||
			tr.Candidates != ref.Candidates || tr.Matched != ref.Matched ||
			tr.Count != ref.Count || tr.NodesVisited != ref.NodesVisited {
			t.Errorf("workers=%d: counters {ent %d scan %d cdt %d rst %d cnt %d nodes %d} != workers=1 {ent %d scan %d cdt %d rst %d cnt %d nodes %d}",
				workers, tr.Entries, tr.Scanned, tr.Candidates, tr.Matched, tr.Count, tr.NodesVisited,
				ref.Entries, ref.Scanned, ref.Candidates, ref.Matched, ref.Count, ref.NodesVisited)
		}
	}
}

// TestTraceOnScanFallback checks the degraded-index path: the trace
// must mark the fallback, report the scan's refinement work, and still
// reconcile with the storage deltas.
func TestTraceOnScanFallback(t *testing.T) {
	dbdir, want := buildPersistentDB(t)
	corruptBtreePages(t, dbdir)
	db, err := Open(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	st0 := db.store.Stats()
	res, err := db.Query("//article[author]/title", WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScanFallback || res.Count != want.Count {
		t.Fatalf("fallback result = %+v, want fallback with count %d", res, want.Count)
	}
	tr := res.Trace
	if tr == nil || !tr.ScanFallback {
		t.Fatalf("trace = %+v, want ScanFallback", tr)
	}
	if tr.Entries != 0 || tr.Candidates != 0 {
		t.Errorf("fallback trace reports pruning counters: ent %d cdt %d", tr.Entries, tr.Candidates)
	}
	if tr.Count != want.Count || tr.NodesVisited <= 0 {
		t.Errorf("fallback trace count %d (want %d), nodes %d (want > 0)", tr.Count, want.Count, tr.NodesVisited)
	}
	std := db.store.Stats().Sub(st0)
	if tr.SeqReads != std.SeqReads || tr.RandomReads != std.RandomReads || tr.BytesRead != std.BytesRead {
		t.Errorf("fallback storage counters diverge: trace {%d %d %d}, delta %+v",
			tr.SeqReads, tr.RandomReads, tr.BytesRead, std)
	}
	if !strings.Contains(tr.String(), "degraded index") {
		t.Errorf("trace.String() does not mention the fallback:\n%s", tr.String())
	}
}

// TestTraceUnindexedScan checks the no-index path still produces a
// coherent trace.
func TestTraceUnindexedScan(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query("//author[email]", WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil || tr.ScanFallback || tr.Entries != 0 {
		t.Fatalf("unexpected trace %+v", tr)
	}
	if tr.Count != 2 || tr.Matched != 2 || tr.NodesVisited <= 0 {
		t.Errorf("trace count %d matched %d nodes %d, want 2/2/>0", tr.Count, tr.Matched, tr.NodesVisited)
	}
	if !strings.Contains(tr.String(), "no index") {
		t.Errorf("trace.String() does not mention the missing index:\n%s", tr.String())
	}
}

// TestUntracedQueryHasNoTrace pins the default: no WithTrace, no slow
// log — no trace allocation.
func TestUntracedQueryHasNoTrace(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	res, err := db.Query("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Errorf("untraced query carries a trace: %+v", res.Trace)
	}
}

// TestSlowQueryLog checks the hook: a threshold of 1ns fires for every
// query with the full trace; a huge threshold never fires; and the hook
// is safe under concurrent queries (run with -race).
func TestSlowQueryLog(t *testing.T) {
	db := traceDB(t, IndexOptions{DepthLimit: 6, Workers: 4})
	var mu sync.Mutex
	var got []QueryTrace
	db.SetOptions(Options{
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery: func(tr QueryTrace) {
			mu.Lock()
			got = append(got, tr)
			mu.Unlock()
		},
	})
	const parallel = 4
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Query("//item[name]"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != parallel {
		t.Fatalf("slow-query hook fired %d times, want %d", n, parallel)
	}
	for _, tr := range got {
		if tr.Total < time.Nanosecond || tr.Query != "//item[name]" || tr.Candidates == 0 {
			t.Errorf("implausible slow-query trace: %+v", tr)
		}
	}

	db.SetOptions(Options{SlowQueryThreshold: time.Hour, OnSlowQuery: func(QueryTrace) {
		t.Error("hook fired below threshold")
	}})
	if _, err := db.Query("//item[name]"); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCountsQueries checks that the process-wide registry moves
// with every query and that the DB-side counters appear in Snapshot.
func TestSnapshotCountsQueries(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	before := db.Snapshot()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := db.Query("//author[email]"); err != nil {
			t.Fatal(err)
		}
	}
	after := db.Snapshot()
	if after.Queries-before.Queries != n {
		t.Errorf("Queries moved by %d, want %d", after.Queries-before.Queries, n)
	}
	if after.Latency.Count-before.Latency.Count != n {
		t.Errorf("latency count moved by %d, want %d", after.Latency.Count-before.Latency.Count, n)
	}
	if after.Candidates-before.Candidates <= 0 {
		t.Error("candidate total did not move")
	}
	if after.Documents != len(docs) || after.IndexEntries != len(docs) {
		t.Errorf("snapshot shape: %d documents, %d entries, want %d/%d",
			after.Documents, after.IndexEntries, len(docs), len(docs))
	}
	if after.BTree.CacheHits == 0 && after.BTree.PageReads == 0 {
		t.Error("snapshot carries no B-tree activity")
	}
	if after.Storage.BytesRead == 0 {
		t.Error("snapshot carries no storage reads")
	}
	// A failing query counts as an error, not a query.
	if _, err := db.Query("///"); err == nil {
		t.Fatal("malformed query did not error")
	}
	final := db.Snapshot()
	if final.QueryErrors-after.QueryErrors != 1 {
		t.Errorf("QueryErrors moved by %d, want 1", final.QueryErrors-after.QueryErrors)
	}
}

// TestTraceClusteredIncludesClusteredHeap checks that refinement I/O on
// a clustered index (which reads the clustered heap, not the primary
// store) still shows up in the trace's storage counters.
func TestTraceClusteredIncludesClusteredHeap(t *testing.T) {
	db := newTestDB(t, IndexOptions{Clustered: true})
	res, err := db.Query("//article[author]/title", WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.Candidates == 0 {
		t.Fatal("no candidates; clustered fetch not exercised")
	}
	reads := tr.SeqReads + tr.RandomReads + tr.CachedReads
	if reads == 0 {
		t.Errorf("clustered refinement shows no storage reads: %+v", tr)
	}
}
