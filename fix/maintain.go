package fix

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Online maintenance. Two concerns live here, both about keeping a
// long-running DB healthy without stopping the world:
//
//   - Checkpointing. Save/Checkpoint absorb the ingest WAL into the base
//     commit. The expensive part — fsyncing the record heap — runs
//     *before* the write locks are taken (CheckpointCtx's pre-sync
//     rounds), so concurrent ingest stalls only for the short final
//     critical section. The Maintainer automates the policy: checkpoint
//     when the WAL grows past an ops/bytes threshold or ages past a
//     deadline, retry transient failures with jittered backoff, and
//     after too many consecutive failures suspend into a half-open
//     probe state (serving continues from the current base + WAL).
//
//   - Scrubbing. ScrubCtx walks the durable artifacts at a bounded rate
//     — B-tree pages read straight from disk, heap records, the
//     tombstone sidecar, the WAL prefix — to find latent corruption
//     while the cached, in-memory copies still look fine. A damaged
//     index degrades (queries fall back to the exact scan) and the
//     Maintainer schedules an automatic rebuild; a damaged WAL is
//     healed by forcing a checkpoint, which makes the guarded
//     operations durable in the base commit and resets the log.

// ErrMaintainerClosed reports an operation on a Maintainer whose
// background loop has exited (Close was called, or its context ended).
var ErrMaintainerClosed = errors.New("fix: maintainer closed")

// checkpointPresyncRounds bounds how many times CheckpointCtx re-syncs
// the heap off-lock before entering the critical section. Each round
// flushes everything appended during the previous round's fsync; the
// bound keeps a firehose of concurrent ingest from starving the
// checkpoint forever.
const checkpointPresyncRounds = 3

// Checkpoint absorbs the ingest WAL into the base commit: heap fsync,
// dictionary, tombstone sidecar, shadow-committed index, then a WAL
// reset to the new base. It is an error on in-memory databases. It is
// CheckpointCtx with context.Background().
func (db *DB) Checkpoint() error { return db.CheckpointCtx(context.Background()) }

// CheckpointCtx is Checkpoint with cancellation, observed between the
// off-lock phases; once the locked commit starts it runs to completion.
//
// The stall bound: a naive Save holds the ingest and write locks across
// the whole heap fsync, so an Add arriving mid-Save waits for all dirty
// heap bytes to reach disk. CheckpointCtx first fsyncs the heap without
// any DB lock (concurrent appends are safe — the heap is append-only
// and the fsync simply covers whatever prefix exists), repeating up to
// checkpointPresyncRounds while ingest keeps landing new bytes. The
// locked section then re-syncs only the small tail appended since the
// last round, and ingest stalls for that bounded tail instead of the
// full absorption.
func (db *DB) CheckpointCtx(ctx context.Context) error {
	if db.dir == "" {
		return fmt.Errorf("fix: Save on an in-memory database")
	}
	for range checkpointPresyncRounds {
		if err := ctx.Err(); err != nil {
			return err
		}
		pre := db.store.Size()
		if err := db.store.Sync(); err != nil {
			return err
		}
		if db.store.Size() == pre {
			break // nothing landed during the fsync; the tail is flushed
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := db.commitAll(); err != nil {
		return err
	}
	db.publish()
	return nil
}

// CheckpointBlocking absorbs the WAL with the write locks held for the
// whole absorption — the naive Save, with none of CheckpointCtx's
// off-lock pre-sync rounds. The locked section is a quiescent point
// (no append lands between the heap fsync and the WAL reset), which
// filesystem-snapshot backups want; it is also the baseline the chunked
// checkpoint's ingest-stall bound is measured against
// (fixbench -exp maintenance).
func (db *DB) CheckpointBlocking() error {
	if db.dir == "" {
		return fmt.Errorf("fix: Save on an in-memory database")
	}
	if err := db.commitAll(); err != nil {
		return err
	}
	db.publish()
	return nil
}

// WALBytes returns the on-disk size of the ingest write-ahead log — the
// bytes a crash would replay, cleared by Checkpoint. It is 0 for
// in-memory DBs and before the first ingest.
func (db *DB) WALBytes() int64 {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// LastCheckpoint returns when the last commit (Save, Checkpoint, or an
// index build's absorb) completed. Before any commit it is the DB's
// creation or open time, so age is always measured from a real baseline.
func (db *DB) LastCheckpoint() time.Time {
	return time.Unix(0, db.lastCheckpoint.Load())
}

// walStatus snapshots the WAL's op count and byte size together.
func (db *DB) walStatus() (ops int, bytes int64) {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.Ops(), db.wal.Size()
}

// ScrubConfig bounds a scrub pass. The zero value is ready to use.
type ScrubConfig struct {
	// Chunk is how many items (B-tree pages, then heap records) one
	// locked step verifies before releasing locks and pausing. 0 means
	// 128.
	Chunk int
	// Pause is the sleep between chunks — the I/O rate limiter. 0 means
	// 2ms; negative means no pause.
	Pause time.Duration
}

func (c *ScrubConfig) setDefaults() {
	if c.Chunk <= 0 {
		c.Chunk = 128
	}
	if c.Pause == 0 {
		c.Pause = 2 * time.Millisecond
	}
}

// ScrubReport summarizes one scrub pass: how much was verified and
// which durable artifacts failed verification.
type ScrubReport struct {
	// IndexPages is the number of B-tree pages verified against disk.
	IndexPages int
	// Records is the number of heap records structurally decoded.
	Records int
	// IndexDamaged reports on-disk B-tree corruption; the index has
	// been degraded (queries fall back to the exact scan) and a rebuild
	// repairs it.
	IndexDamaged bool
	// HeapDamaged reports a record that failed structural decoding.
	// The heap is the primary copy; this is data loss, not a cache
	// problem, and only a backup restores it.
	HeapDamaged bool
	// TombDamaged reports an unreadable tombstone sidecar.
	TombDamaged bool
	// WALDamaged reports corruption inside the WAL's acknowledged
	// prefix. The in-memory state is unaffected; a checkpoint heals it
	// by making the guarded operations durable in the base commit.
	WALDamaged bool
}

// Damaged reports whether the pass found any corruption.
func (r ScrubReport) Damaged() bool {
	return r.IndexDamaged || r.HeapDamaged || r.TombDamaged || r.WALDamaged
}

// ScrubCtx verifies the database's durable artifacts in bounded chunks:
// the index B-tree read directly from disk (bypassing the page cache,
// so latent bit rot is found while cached pages still look fine), every
// heap record structurally decoded, the tombstone sidecar, and the
// ingest WAL's acknowledged prefix. Locks are released and cfg.Pause
// elapses between chunks, so queries and ingest interleave with the
// scan.
//
// A damaged index latches degraded health and republishes, exactly as
// if a query had tripped over the corruption. Everything found is also
// reported in the ScrubReport; the error is the join of the component
// failures (test with errors.Is against ErrCorrupt), nil for a clean
// pass, or ctx.Err() if cancelled mid-scan. It is Scrub with a caller
// context.
func (db *DB) ScrubCtx(ctx context.Context, cfg ScrubConfig) (ScrubReport, error) {
	cfg.setDefaults()
	var rep ScrubReport
	var errs []error
	pause := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if cfg.Pause > 0 {
			time.Sleep(cfg.Pause)
		}
		return ctx.Err()
	}

	// Index: on-disk page sweep. ScrubDiskCtx latches degraded health on
	// corruption; generation health is frozen at publish time, so the
	// fix layer must republish for new pins to see the degradation. The
	// pointer is snapshotted once: a rebuild completing mid-scan swaps
	// db.index and rewrites the B-tree file in place, so the remainder
	// of this pass may see torn pages — any damage it reports then
	// latches on the superseded index object, and the next pass scrubs
	// the fresh one. (The Maintainer never overlaps the two; only an
	// explicit concurrent RebuildIndex hits this window.)
	if ix := db.indexRef(); ix != nil && ix.Health() == nil {
		n, err := ix.ScrubDiskCtx(ctx, cfg.Chunk, pause)
		rep.IndexPages = n
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				return rep, err // cancellation or a plain read error
			}
			rep.IndexDamaged = true
			errs = append(errs, err)
			db.publish()
		}
	}

	// Heap: structural decode of every record. The record count can
	// shrink under us (a failed batch rolls its appends back), so a
	// record error is re-checked against the current count before it is
	// called corruption.
	for rec := 0; rec < db.store.NumRecords(); rec++ {
		if rec%cfg.Chunk == 0 && rec > 0 {
			if err := pause(); err != nil {
				return rep, err
			}
		}
		buf, err := db.store.Record(uint32(rec))
		if err == nil {
			var used int
			_, used, err = xmltree.DecodeBinary(buf, db.dict)
			if err == nil && used != len(buf) {
				err = fmt.Errorf("record %d: %d trailing bytes after document", rec, len(buf)-used)
			}
		}
		if err != nil {
			if rec >= db.store.NumRecords() {
				break // raced a rollback; the record legitimately vanished
			}
			rep.HeapDamaged = true
			errs = append(errs, fmt.Errorf("%w: heap: %w", ErrCorrupt, err))
			break
		}
		rep.Records++
	}

	// Tombstone sidecar: a corrupt one would resurrect deleted
	// documents at the next Open.
	if db.dir != "" {
		if data, err := os.ReadFile(filepath.Join(db.dir, "fix.tomb")); err == nil {
			if _, derr := storage.DecodeTombstones(data); derr != nil {
				rep.TombDamaged = true
				errs = append(errs, fmt.Errorf("%w: tombstone sidecar: %w", ErrCorrupt, derr))
			}
		} else if !os.IsNotExist(err) {
			errs = append(errs, err)
		}
	}

	// WAL: verify the acknowledged prefix. ingestMu serializes against
	// appends and resets; the size is snapshotted under the lock and
	// only the prefix up to it is read, so a batch landing mid-verify
	// is out of scope, not torn.
	db.ingestMu.Lock()
	var walErr error
	if db.wal != nil {
		walErr = db.wal.VerifyPrefix(db.wal.Size())
	}
	db.ingestMu.Unlock()
	if walErr != nil {
		rep.WALDamaged = true
		errs = append(errs, fmt.Errorf("%w: ingest log: %w", ErrCorrupt, walErr))
	}

	return rep, errors.Join(errs...)
}

// Scrub is ScrubCtx with context.Background().
func (db *DB) Scrub(cfg ScrubConfig) (ScrubReport, error) {
	return db.ScrubCtx(context.Background(), cfg)
}

// MaintainConfig tunes a Maintainer. The zero value is a sensible
// production policy; a negative value disables the individual trigger
// it configures.
type MaintainConfig struct {
	// Interval is the trigger-evaluation cadence. 0 means 1s.
	Interval time.Duration
	// WALOps checkpoints once the WAL carries this many acknowledged
	// operations. 0 means 1024; negative disables the trigger.
	WALOps int
	// WALBytes checkpoints once the WAL reaches this size. 0 means
	// 4 MiB; negative disables the trigger.
	WALBytes int64
	// MaxAge checkpoints once the last commit is this old and the WAL
	// is non-empty. 0 means 30s; negative disables the trigger.
	MaxAge time.Duration
	// RetryBackoff is the initial delay after a failed checkpoint; it
	// doubles per consecutive failure (with ±25% jitter) up to
	// ProbeInterval. 0 means 100ms.
	RetryBackoff time.Duration
	// MaxFailures is how many consecutive checkpoint failures suspend
	// automatic checkpointing into the half-open probe state. 0 means 5.
	MaxFailures int
	// ProbeInterval is how often a suspended maintainer probes with one
	// checkpoint attempt; a success closes the circuit. 0 means 30s.
	ProbeInterval time.Duration
	// ScrubInterval schedules background scrub passes. 0 means 2m;
	// negative disables scrubbing.
	ScrubInterval time.Duration
	// ScrubChunk and ScrubPause bound each pass; see ScrubConfig.
	ScrubChunk int
	ScrubPause time.Duration
}

func (c *MaintainConfig) setDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.WALOps == 0 {
		c.WALOps = 1024
	}
	if c.WALBytes == 0 {
		c.WALBytes = 4 << 20
	}
	if c.MaxAge == 0 {
		c.MaxAge = 30 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 5
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 30 * time.Second
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = 2 * time.Minute
	}
	if c.ScrubChunk <= 0 {
		c.ScrubChunk = 128
	}
	if c.ScrubPause == 0 {
		c.ScrubPause = 2 * time.Millisecond
	}
}

// Maintainer state names, surfaced through MaintainerHealth.State.
const (
	// MaintainIdle: checkpointing is keeping up; no failures pending.
	MaintainIdle = "idle"
	// MaintainRetrying: the last checkpoint failed; the next attempt is
	// scheduled with backoff.
	MaintainRetrying = "retrying"
	// MaintainSuspended: MaxFailures consecutive failures; automatic
	// checkpointing is suspended and a probe runs every ProbeInterval
	// (half-open). Serving continues from the current base + WAL.
	MaintainSuspended = "suspended"
)

// MaintainerHealth is a point-in-time snapshot of the maintenance loop,
// surfaced by fixserve's /healthz.
type MaintainerHealth struct {
	State               string    `json:"state"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
	LastError           string    `json:"last_error,omitempty"`
	Checkpoints         int64     `json:"checkpoints"`
	CheckpointFailures  int64     `json:"checkpoint_failures"`
	ScrubPasses         int64     `json:"scrub_passes"`
	ScrubFindings       int64     `json:"scrub_findings"`
	AutoRebuilds        int64     `json:"auto_rebuilds"`
	LastScrub           time.Time `json:"last_scrub"`
	LastScrubError      string    `json:"last_scrub_error,omitempty"`
}

// Maintainer is a DB's background maintenance loop: threshold-driven
// checkpointing with failure backoff and suspension, periodic scrub
// passes, and automatic rebuild of a degraded index. One goroutine per
// Maintainer; Close stops it. Start one per DB at most.
type Maintainer struct {
	db  *DB
	cfg MaintainConfig
	ctx context.Context // loop context; immutable after StartMaintainer

	kick   chan chan error // explicit checkpoint requests
	stop   chan struct{}   // closed by Close
	exited chan struct{}   // closed when the loop returns

	closeOnce sync.Once

	mu sync.Mutex // lockcheck: leaf
	h  MaintainerHealth
	// guarded by mu: scheduling state the loop and Health share.
	notBefore        time.Time // no automatic checkpoint before this (backoff)
	nextProbe        time.Time // next half-open probe while suspended
	nextScrub        time.Time // next scheduled scrub pass
	rebuildNotBefore time.Time // auto-rebuild backoff
	rebuildFailures  int
}

// StartMaintainer starts the background maintenance loop over db. It is
// an error on an in-memory database (there is nothing to checkpoint).
// The loop exits when ctx ends or Close is called; Close also waits for
// it.
func (db *DB) StartMaintainer(ctx context.Context, cfg MaintainConfig) (*Maintainer, error) {
	if db.dir == "" {
		return nil, fmt.Errorf("fix: maintainer on an in-memory database")
	}
	cfg.setDefaults()
	m := &Maintainer{
		db:     db,
		cfg:    cfg,
		ctx:    ctx,
		kick:   make(chan chan error),
		stop:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	m.h.State = MaintainIdle
	if cfg.ScrubInterval > 0 {
		m.nextScrub = time.Now().Add(cfg.ScrubInterval)
	}
	go m.run()
	return m, nil
}

// Close stops the maintenance loop and waits for it to exit. It never
// checkpoints on the way out — callers that want a final checkpoint run
// one explicitly (fixserve's shutdown does).
func (m *Maintainer) Close() {
	m.closeOnce.Do(func() { close(m.stop) })
	<-m.exited
}

// Checkpoint asks the loop to checkpoint now and waits for the result.
// It works in every state — during suspension it acts as a manual
// probe. fixserve's POST /admin/checkpoint lands here.
func (m *Maintainer) Checkpoint(ctx context.Context) error {
	reply := make(chan error, 1)
	select {
	case m.kick <- reply:
	case <-ctx.Done():
		return ctx.Err()
	case <-m.exited:
		return ErrMaintainerClosed
	}
	select {
	case err := <-reply:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Health snapshots the maintenance loop's state.
func (m *Maintainer) Health() MaintainerHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.h
}

// run is the maintenance loop: a single goroutine evaluating triggers
// every cfg.Interval and serving explicit checkpoint requests. All
// actual work (checkpoint, scrub, rebuild) runs on this goroutine, so
// maintenance operations never overlap each other.
func (m *Maintainer) run() {
	defer close(m.exited)
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.ctx.Done():
			return
		case reply := <-m.kick:
			reply <- m.checkpoint() // sendcheck: bounded
		case <-ticker.C:
			m.tick(time.Now())
		}
	}
}

// tick evaluates the maintenance triggers once.
func (m *Maintainer) tick(now time.Time) {
	m.mu.Lock()
	state := m.h.State
	notBefore, nextProbe := m.notBefore, m.nextProbe
	nextScrub := m.nextScrub
	rebuildAt := m.rebuildNotBefore
	m.mu.Unlock()

	switch state {
	case MaintainSuspended:
		// Half-open: one probe attempt per ProbeInterval; a success
		// closes the circuit (checkpoint() resets the state).
		if !now.Before(nextProbe) {
			_ = m.checkpoint()
		}
	default:
		if now.Before(notBefore) {
			break // backing off after a failure
		}
		ops, bytes := m.db.walStatus()
		trigger := (m.cfg.WALOps > 0 && ops >= m.cfg.WALOps) ||
			(m.cfg.WALBytes > 0 && bytes >= m.cfg.WALBytes) ||
			(m.cfg.MaxAge > 0 && ops > 0 && now.Sub(m.db.LastCheckpoint()) >= m.cfg.MaxAge)
		if trigger {
			_ = m.checkpoint()
		}
	}

	// A degraded index is rebuilt automatically, with its own doubling
	// backoff so a persistently failing rebuild cannot spin.
	if m.db.IndexHealth() != nil && !now.Before(rebuildAt) {
		m.rebuild()
	}

	if m.cfg.ScrubInterval > 0 && !nextScrub.IsZero() && !now.Before(nextScrub) {
		m.scrub()
		m.mu.Lock()
		m.nextScrub = time.Now().Add(m.cfg.ScrubInterval)
		m.mu.Unlock()
	}
}

// checkpoint runs one checkpoint attempt and updates the failure state
// machine: success resets everything to idle; failures back off with
// jittered doubling until MaxFailures suspends automatic attempts.
func (m *Maintainer) checkpoint() error {
	err := m.db.CheckpointCtx(m.ctx)
	obs.Default().ObserveCheckpoint(err == nil)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		m.h.State = MaintainIdle
		m.h.ConsecutiveFailures = 0
		m.h.LastError = ""
		m.h.Checkpoints++
		m.notBefore = time.Time{}
		return nil
	}
	m.h.ConsecutiveFailures++
	m.h.LastError = err.Error()
	m.h.CheckpointFailures++
	if m.h.ConsecutiveFailures >= m.cfg.MaxFailures {
		m.h.State = MaintainSuspended
		m.nextProbe = time.Now().Add(m.cfg.ProbeInterval)
	} else {
		m.h.State = MaintainRetrying
		m.notBefore = time.Now().Add(backoff(m.cfg.RetryBackoff, m.h.ConsecutiveFailures-1, m.cfg.ProbeInterval))
	}
	return err
}

// scrub runs one bounded scrub pass and reacts to what it finds: a
// damaged WAL is healed by an immediate checkpoint, a damaged index is
// already degraded (the rebuild trigger picks it up next tick).
func (m *Maintainer) scrub() {
	rep, err := m.db.ScrubCtx(m.ctx, ScrubConfig{Chunk: m.cfg.ScrubChunk, Pause: m.cfg.ScrubPause})
	if m.ctx.Err() != nil {
		return // cancelled mid-pass; not a finding
	}
	obs.Default().ObserveScrub(rep.Damaged())
	m.mu.Lock()
	m.h.ScrubPasses++
	m.h.LastScrub = time.Now()
	if err != nil {
		m.h.ScrubFindings++
		m.h.LastScrubError = err.Error()
	} else {
		m.h.LastScrubError = ""
	}
	m.mu.Unlock()
	if rep.WALDamaged {
		// The acknowledged prefix is unreadable on disk but intact in
		// memory: checkpointing makes it durable in the base commit and
		// resets the log.
		_ = m.checkpoint()
	}
}

// rebuild attempts an automatic RebuildIndex of a degraded index.
func (m *Maintainer) rebuild() {
	err := m.db.RebuildIndexCtx(m.ctx)
	if m.ctx.Err() != nil {
		return
	}
	obs.Default().ObserveAutoRebuild(err == nil)
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		m.h.AutoRebuilds++
		m.rebuildFailures = 0
		m.rebuildNotBefore = time.Time{}
		return
	}
	m.rebuildFailures++
	m.rebuildNotBefore = time.Now().Add(backoff(m.cfg.RetryBackoff, m.rebuildFailures-1, m.cfg.ProbeInterval))
}

// backoff returns base<<n with ±25% jitter, capped at max.
func backoff(base time.Duration, n int, max time.Duration) time.Duration {
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter spreads retries from many shards so they never thundering-
	// herd a recovering disk.
	j := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + j
}
