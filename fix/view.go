package fix

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/par"
	"github.com/fix-index/fix/internal/xpath"
)

// ErrViewClosed reports a query on a View whose Close already ran.
var ErrViewClosed = errors.New("fix: view closed")

// View is a pinned, immutable snapshot of the database: the index image,
// the document set, and the tombstones exactly as they were when View()
// was called. Queries on a View take no lock anywhere — concurrent
// queries on one View (or many) scale across cores, and writers
// publishing new generations (Save, BuildIndex, RebuildIndex, ingest
// batches) never block or tear an in-flight query; they become visible
// to Views opened afterwards.
//
// A View holds a reference on its generation until Close; Close is
// idempotent and must be called, or the generation's memory (the frozen
// B-tree image) is retained for the life of the process. The DB-level
// query methods are pin-for-one-call wrappers over a View, so code that
// does not need repeatable reads never touches this type.
type View struct {
	db     *DB
	gen    *core.Generation
	closed atomic.Bool
}

// View pins the current generation and returns a handle for querying it.
// The snapshot is the last published state: everything committed by
// Save/BuildIndex/RebuildIndex/AddDocument/ingest batches so far, and
// nothing that commits afterwards. Always pair with Close.
func (db *DB) View() *View {
	for {
		g := db.gen.Load()
		if g == nil {
			// Publication raced DB construction (only possible for a DB
			// built inside this package before its first publish).
			db.publish()
			continue
		}
		if g.Pin() {
			return &View{db: db, gen: g}
		}
		// The generation was fully released between Load and Pin — the
		// publisher has already swapped in a newer one; retry on it.
	}
}

// Close releases the View's pin on its generation. Idempotent; queries
// after Close return ErrViewClosed.
//
// paircheck: releases(gen) — the pin was taken in DB.View; deleting the
// Unpin below would leak the generation (and fail `make lint`).
func (v *View) Close() error {
	if v.closed.CompareAndSwap(false, true) {
		v.gen.Unpin()
	}
	return nil
}

// Generation returns the publish sequence number of the pinned snapshot.
// It increases by one at every publish, so two Views over the same
// number are byte-identical snapshots.
func (v *View) Generation() uint64 { return v.gen.ID() }

// GenerationID returns the publish sequence number of the currently
// published generation (the one a new View would pin).
func (db *DB) GenerationID() uint64 {
	if g := db.gen.Load(); g != nil {
		return g.ID()
	}
	return 0
}

// LiveGenerations returns how many generations are currently retained:
// the published one plus older ones still pinned by open Views. A steady
// value above 1 under no open Views indicates a pin leak.
func (db *DB) LiveGenerations() int64 { return db.liveGens.Load() }

// publish freezes the current committed state into a new generation and
// atomically swaps it in as the one queries pin. Writers call it after
// every durable state change (Save, index build/rebuild, a successful
// ingest batch, a query-path degrade). The previous generation keeps
// serving every View pinned to it and is released when its last pin
// drops. pubMu serializes publishers; the read lock excludes a mid-batch
// applyBatch, so a freeze never captures a half-applied state.
//
// paircheck: releases(prev) — the publisher's reference to the previous
// generation ends here; deleting the Unpin would retain every old
// generation forever.
func (db *DB) publish() {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	prev := db.gen.Load()
	db.mu.RLock()
	g := core.NewGeneration(db.genSeq.Add(1), db.index, db.store, db.dict, prev,
		func() { db.liveGens.Add(-1) })
	db.mu.RUnlock()
	db.liveGens.Add(1)
	db.gen.Store(g)
	if prev != nil {
		prev.Unpin() // drop the publisher's reference; pinned Views keep it alive
	}
}

// Query evaluates the XPath expression against the pinned snapshot. It
// is QueryCtx with context.Background(); see DB.QueryCtx for semantics —
// the two differ only in which state they see (the View's frozen
// generation vs. the latest published one).
func (v *View) Query(expr string, opts ...QueryOption) (Result, error) {
	return v.QueryCtx(context.Background(), expr, opts...)
}

// QueryCtx evaluates the XPath expression against the pinned snapshot
// with cancellation, resource governance, and optional tracing — the
// same pipeline and options as DB.QueryCtx, minus every lock: pruning
// scans the frozen B-tree image and refinement reads the frozen record
// view, so concurrent calls proceed fully in parallel.
func (v *View) QueryCtx(ctx context.Context, expr string, opts ...QueryOption) (res Result, err error) {
	db := v.db
	defer db.contain("QueryCtx", true, &err)
	if v.closed.Load() {
		return Result{}, ErrViewClosed
	}
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	lim := db.limitsFor(&cfg)
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	var tr *obs.Trace
	start := time.Now()
	if cfg.trace || db.slowQueryEnabled() {
		tr = &obs.Trace{Query: expr, Start: start, Generation: v.gen.ID()}
	}
	res, err = v.queryTraced(ctx, expr, tr, lim, cfg.scanOnly)
	total := time.Since(start)
	if err != nil {
		observeQueryError(err)
		res = Result{}
		if tr != nil {
			// Keep the partial trace: the phases that did run are
			// attributed, so a deadline kill shows where the time went.
			tr.Total = total
			res.Trace = traceFromObs(tr)
		}
		return res, err
	}
	var visited int64
	if tr != nil {
		tr.Total = total
		visited = tr.NodesVisited
		pub := traceFromObs(tr)
		res.Trace = pub
		if db.slowQueryEnabled() && total >= db.obsOpts.SlowQueryThreshold {
			db.obsOpts.OnSlowQuery(*pub)
		}
	}
	var scanned int
	if tr != nil {
		scanned = tr.Scanned
	}
	obs.Default().ObserveQuery(total, scanned, res.Candidates, res.MatchedEntries, res.Count, res.ScanFallback, visited)
	return res, nil
}

// queryTraced runs the query pipeline against the pinned generation,
// filling tr (which may be nil) along the way, under lim. scanOnly
// bypasses the index entirely — the degraded-operation path ScanOnly
// requests.
func (v *View) queryTraced(ctx context.Context, expr string, tr *obs.Trace, lim Limits, scanOnly bool) (Result, error) {
	parseStart := time.Now()
	q, err := xpath.Parse(expr)
	if tr != nil {
		tr.Phase[obs.PhaseParse] += time.Since(parseStart)
	}
	if err != nil {
		return Result{}, err
	}
	g := v.gen
	if !scanOnly && g.Covered(q) {
		res, err := g.QueryGoverned(ctx, q, tr, coreLimits(lim))
		if err != nil {
			return Result{}, err
		}
		return Result{
			Count:          res.Count,
			Entries:        res.Entries,
			Candidates:     res.Candidates,
			MatchedEntries: res.Matched,
			ScanFallback:   res.Fallback,
		}, nil
	}
	if tr != nil && scanOnly {
		tr.Fallback = true
	}
	res, err := g.ScanCount(ctx, q.Tree(), tr, coreLimits(lim), false)
	if err != nil {
		return Result{}, err
	}
	return Result{Count: res.Count, ScanFallback: scanOnly}, nil
}

// Exists reports whether the query has at least one match in the pinned
// snapshot. It is ExistsCtx with context.Background().
func (v *View) Exists(expr string, opts ...QueryOption) (bool, error) {
	return v.ExistsCtx(context.Background(), expr, opts...)
}

// ExistsCtx is Exists with cancellation; verification fans out over the
// worker pool and the first match stops the remaining workers. Of the
// query options, QueryLimits (for its Timeout) and ScanOnly apply;
// Exists produces no Result, so Trace has nothing to attach to and is
// ignored.
func (v *View) ExistsCtx(ctx context.Context, expr string, opts ...QueryOption) (ok bool, err error) {
	db := v.db
	defer db.contain("ExistsCtx", true, &err)
	if v.closed.Load() {
		return false, ErrViewClosed
	}
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	lim := db.limitsFor(&cfg)
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	q, err := xpath.Parse(expr)
	if err != nil {
		return false, err
	}
	g := v.gen
	if !cfg.scanOnly && g.Covered(q) && g.Health() == nil {
		return g.ExistsGoverned(ctx, q)
	}
	return g.ScanExists(ctx, q.Tree())
}

// QueryDocuments returns the IDs of documents in the pinned snapshot
// containing at least one match, in document order. It is
// QueryDocumentsCtx with context.Background().
func (v *View) QueryDocuments(expr string, opts ...QueryOption) ([]uint32, error) {
	return v.QueryDocumentsCtx(context.Background(), expr, opts...)
}

// QueryDocumentsCtx is QueryDocuments with cancellation. Documents are
// verified in parallel over the worker pool; the result order is still
// document order regardless of the worker count. Of the query options,
// QueryLimits (for its Timeout) and ScanOnly (skip the index candidate
// pre-filter) apply; Trace is ignored.
func (v *View) QueryDocumentsCtx(ctx context.Context, expr string, opts ...QueryOption) (docs []uint32, err error) {
	db := v.db
	defer db.contain("QueryDocumentsCtx", true, &err)
	if v.closed.Load() {
		return nil, ErrViewClosed
	}
	var cfg queryConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	lim := db.limitsFor(&cfg)
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	q, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	g := v.gen
	nq, err := nok.Compile(q.Tree(), db.dict)
	if err != nil {
		return nil, err
	}
	var candDocs map[uint32]bool
	if !cfg.scanOnly && g.Covered(q) {
		cands, _, err := g.CandidatesCtx(ctx, q)
		switch {
		case errors.Is(err, core.ErrDegraded):
			// The index cannot be trusted; scan every document instead.
		case err != nil:
			return nil, err
		default:
			candDocs = make(map[uint32]bool, len(cands))
			for _, c := range cands {
				candDocs[c.Primary.Rec()] = true
			}
		}
	}
	store, tombs := g.Store(), g.Tombs()
	nrec := store.NumRecords()
	hits := make([]bool, nrec)
	err = par.Do(ctx, g.Workers(), nrec, func(i int) error {
		rec := uint32(i)
		if candDocs != nil && !candDocs[rec] {
			return nil
		}
		if tombs.Has(rec) {
			return nil
		}
		cur, err := store.Cursor(rec)
		if err != nil {
			return err
		}
		hits[i] = nq.Exists(cur, 0)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []uint32
	for rec, hit := range hits {
		if hit {
			out = append(out, uint32(rec))
		}
	}
	return out, nil
}
