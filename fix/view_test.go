package fix

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestViewPinnedSnapshot pins a view, commits more data, and checks the
// view keeps answering from its frozen generation while the DB moves on.
func TestViewPinnedSnapshot(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	v := db.View()
	defer v.Close()

	res, err := v.Query("//article[author]/title")
	if err != nil || res.Count != 2 {
		t.Fatalf("view query = %+v, %v; want count 2", res, err)
	}
	gen0 := v.Generation()

	// Commit another matching document; AddDocument publishes.
	if _, err := db.AddDocumentString(docs[0]); err != nil {
		t.Fatal(err)
	}
	if db.GenerationID() <= gen0 {
		t.Errorf("GenerationID = %d after a commit, want > %d", db.GenerationID(), gen0)
	}

	// The pinned view still answers from the old snapshot...
	res, err = v.Query("//article[author]/title")
	if err != nil || res.Count != 2 {
		t.Errorf("pinned view query = %+v, %v; want the pre-commit count 2", res, err)
	}
	ids, err := v.QueryDocuments("//author[email]")
	if err != nil || len(ids) != 2 {
		t.Errorf("pinned view QueryDocuments = %v, %v; want 2 documents", ids, err)
	}
	// ...while the DB (and a fresh view) see the new document.
	res, err = db.Query("//article[author]/title")
	if err != nil || res.Count != 3 {
		t.Errorf("db query after commit = %+v, %v; want count 3", res, err)
	}
	v2 := db.View()
	defer v2.Close()
	if v2.Generation() <= gen0 {
		t.Errorf("fresh view generation = %d, want > %d", v2.Generation(), gen0)
	}
	res, err = v2.Query("//article[author]/title")
	if err != nil || res.Count != 3 {
		t.Errorf("fresh view query = %+v, %v; want count 3", res, err)
	}
}

// TestViewClosed checks Close is idempotent and queries after it fail
// with the sentinel.
func TestViewClosed(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	v := db.View()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Query("//article"); !errors.Is(err, ErrViewClosed) {
		t.Errorf("Query after Close = %v, want ErrViewClosed", err)
	}
	if _, err := v.Exists("//article"); !errors.Is(err, ErrViewClosed) {
		t.Errorf("Exists after Close = %v, want ErrViewClosed", err)
	}
	if _, err := v.QueryDocuments("//article"); !errors.Is(err, ErrViewClosed) {
		t.Errorf("QueryDocuments after Close = %v, want ErrViewClosed", err)
	}
}

// TestGenerationPinRelease is the pin-leak test: old generations must be
// reclaimed as soon as their last View closes, and the live count must
// return to exactly one (the published generation).
func TestGenerationPinRelease(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	if n := db.LiveGenerations(); n != 1 {
		t.Fatalf("LiveGenerations at rest = %d, want 1", n)
	}
	v1 := db.View()
	v2 := db.View() // same generation: pins, not generations
	if n := db.LiveGenerations(); n != 1 {
		t.Fatalf("LiveGenerations with two views of one generation = %d, want 1", n)
	}
	// Each commit publishes; the pinned old generation stays live.
	if _, err := db.AddDocumentString(docs[0]); err != nil {
		t.Fatal(err)
	}
	if n := db.LiveGenerations(); n != 2 {
		t.Fatalf("LiveGenerations with a pinned old generation = %d, want 2", n)
	}
	v3 := db.View() // pins the new generation
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.LiveGenerations(); n != 2 {
		t.Fatalf("LiveGenerations after first close = %d, want 2 (v2 still pins)", n)
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.LiveGenerations(); n != 1 {
		t.Fatalf("LiveGenerations after the old generation's last close = %d, want 1", n)
	}
	if err := v3.Close(); err != nil {
		t.Fatal(err)
	}
	if n := db.LiveGenerations(); n != 1 {
		t.Fatalf("LiveGenerations at rest again = %d, want 1", n)
	}
}

// TestRecoveryPublishesOneGeneration is the crash test: a reopen that
// replays the ingest WAL must end with exactly one published generation
// covering the replayed state.
func TestRecoveryPublishesOneGeneration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddDocumentString(docs[0]); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged but never Saved: recovery must replay these.
	if _, err := db.IngestBatchCtx(context.Background(), docs[1:3]); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // crash stand-in: no Save
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = re.Close() }()
	if n := re.LiveGenerations(); n != 1 {
		t.Errorf("LiveGenerations after recovery = %d, want exactly 1", n)
	}
	if g := re.GenerationID(); g != 1 {
		t.Errorf("GenerationID after recovery = %d, want 1 (one publish at Open)", g)
	}
	// The single published generation covers the replayed operations.
	v := re.View()
	defer v.Close()
	res, err := v.Query("//article[author]/title")
	if err != nil || res.Count != 2 {
		t.Errorf("recovered view query = %+v, %v; want count 2", res, err)
	}
}

// TestConcurrentViewsDuringSwaps is the -race stress test for the
// lock-free read path: readers query pinned views and the DB-level
// wrappers while a writer commits documents, Saves, and rebuilds the
// index. Every query must succeed (zero dropped) and every count must
// be a value some published generation actually held (never torn).
func TestConcurrentViewsDuringSwaps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = db.Close() }()
	const base = 8
	for i := 0; i < base; i++ {
		if _, err := db.AddDocumentString(docs[i%len(docs)]); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	baseRes, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 4
		writes  = 24
	)
	var (
		wg      sync.WaitGroup
		done    atomic.Bool
		queries atomic.Int64
	)
	errs := make(chan error, readers+1)

	// Writer: every document is docs[0] (matches the query), so the
	// count visible to any generation is base matches + the number of
	// commits published at its freeze — strictly monotonic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for i := 0; i < writes; i++ {
			if _, err := db.AddDocumentString(docs[0]); err != nil {
				errs <- fmt.Errorf("writer add %d: %w", i, err)
				return
			}
			switch {
			case i%8 == 5:
				if err := db.Save(); err != nil {
					errs <- fmt.Errorf("writer save %d: %w", i, err)
					return
				}
			case i%8 == 7:
				if err := db.RebuildIndex(); err != nil {
					errs <- fmt.Errorf("writer rebuild %d: %w", i, err)
					return
				}
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := -1 // per-reader: generations only move forward
			for !done.Load() {
				v := db.View()
				res1, err := v.Query("//article[author]/title")
				if err != nil {
					errs <- fmt.Errorf("reader %d query: %w", r, err)
					_ = v.Close()
					return
				}
				// Repeatable read: the same view answers identically.
				res2, err := v.Query("//article[author]/title")
				if err != nil {
					errs <- fmt.Errorf("reader %d requery: %w", r, err)
					_ = v.Close()
					return
				}
				if res1.Count != res2.Count {
					errs <- fmt.Errorf("reader %d: view count changed %d -> %d within one pin", r, res1.Count, res2.Count)
					_ = v.Close()
					return
				}
				// Not torn: the count is base plus a whole number of
				// committed writes, inside the writer's range.
				delta := res1.Count - baseRes.Count
				if delta < 0 || delta > writes {
					errs <- fmt.Errorf("reader %d: torn count %d (base %d, writes %d)", r, res1.Count, baseRes.Count, writes)
					_ = v.Close()
					return
				}
				if delta < last {
					errs <- fmt.Errorf("reader %d: count went backwards %d -> %d", r, last, delta)
					_ = v.Close()
					return
				}
				last = delta
				if _, err := v.Exists("//author[email]"); err != nil {
					errs <- fmt.Errorf("reader %d exists: %w", r, err)
					_ = v.Close()
					return
				}
				_ = v.Close()
				// The lock-free DB wrappers ride the same path.
				if _, err := db.Query("//article[author]/title"); err != nil {
					errs <- fmt.Errorf("reader %d db query: %w", r, err)
					return
				}
				queries.Add(1)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if queries.Load() == 0 {
		t.Fatal("stress ran zero reader iterations")
	}
	if n := db.LiveGenerations(); n != 1 {
		t.Errorf("LiveGenerations after stress = %d, want 1 (no pin leaks)", n)
	}
	// The final state is fully visible.
	res, err := db.Query("//article[author]/title")
	if err != nil || res.Count != baseRes.Count+writes {
		t.Errorf("final count = %+v, %v; want %d", res, err, baseRes.Count+writes)
	}
}
