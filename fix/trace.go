package fix

import (
	"fmt"
	"strings"
	"time"

	"github.com/fix-index/fix/internal/obs"
)

// QueryTrace is the full execution trace of one query: wall time per
// pipeline phase plus the counters each phase produced. Request one with
// the WithTrace query option (it comes back on Result.Trace), or receive
// them through Options.OnSlowQuery.
//
// The phases are the pipeline of the paper's Algorithm 2: Parse (XPath
// text to query tree), Plan (//-decomposition and feature computation),
// Probe (the B-tree eigenvalue range scan — pruning), Fetch (candidate
// pointer dereferences into storage), Refine (NoK navigational
// verification). Fetch and Refine are summed across the refinement
// worker pool, so on a multi-core query they can exceed Total.
//
// The counters reconcile with the paper's §6.2 quantities: Entries is
// ent, Candidates is cdt, Matched is rst, so for one query
// sel = 1 - Matched/Entries, pp = 1 - Candidates/Entries and
// fpr = 1 - Matched/Candidates. docs/OBSERVABILITY.md walks through a
// complete example.
type QueryTrace struct {
	// Query is the XPath text as given.
	Query string `json:"query"`
	// Start is when evaluation began; Total the end-to-end wall time.
	Start time.Time     `json:"start"`
	Total time.Duration `json:"total_ns"`

	// Per-phase wall time. Fetch and Refine are cumulative across
	// workers (the same convention as BuildStats).
	Parse  time.Duration `json:"parse_ns"`
	Plan   time.Duration `json:"plan_ns"`
	Probe  time.Duration `json:"probe_ns"`
	Fetch  time.Duration `json:"fetch_ns"`
	Refine time.Duration `json:"refine_ns"`

	// Entries is the number of index entries (ent); Scanned how many
	// the range scan touched; Candidates how many survived the feature
	// filter (cdt); Matched how many produced at least one result
	// (rst); Count the total output-node matches.
	Entries    int `json:"entries"`
	Scanned    int `json:"scanned"`
	Candidates int `json:"candidates"`
	Matched    int `json:"matched"`
	Count      int `json:"count"`

	// Workers is the refinement worker-pool size used; NodesVisited the
	// subtree nodes the NoK bottom-up pass touched (refinement work).
	Workers      int   `json:"workers"`
	NodesVisited int64 `json:"nodes_visited"`

	// B-tree pager activity of the probe phase. PageReads are physical
	// reads (cache misses); Evictions count pages dropped from the LRU.
	PageReads  int64 `json:"page_reads"`
	PageWrites int64 `json:"page_writes"`
	CacheHits  int64 `json:"cache_hits"`
	Evictions  int64 `json:"evictions"`

	// Record-heap activity of fetch + refinement, primary and clustered
	// heaps combined, in the storage layer's accounting.
	SeqReads     int64 `json:"seq_reads"`
	RandomReads  int64 `json:"random_reads"`
	CachedReads  int64 `json:"cached_reads"`
	BytesRead    int64 `json:"bytes_read"`
	SubtreeReads int64 `json:"subtree_reads"`
	SubtreeBytes int64 `json:"subtree_bytes"`

	// ScanFallback reports a degraded index answered by full scan; the
	// pruning counters are then zero. Entries == 0 with ScanFallback
	// false means the query ran without (or not covered by) an index.
	ScanFallback bool `json:"scan_fallback"`

	// Generation is the publish sequence number of the snapshot the
	// query ran against (see DB.View), so traces collected across a
	// concurrent Save/RebuildIndex attribute to the right index image.
	Generation uint64 `json:"generation"`

	// Collection and Shard attribute the trace to one shard of a sharded
	// collection (internal/collection): Collection is the collection
	// name, Shard the zero-based shard index. They are filled by the
	// collection layer — a trace from a plain DB has Collection == ""
	// and Shard == -1 is never used (the zero value 0 with an empty
	// Collection means "not sharded"). Slow-query log lines include them
	// so operators can attribute hot shards.
	Collection string `json:"collection,omitempty"`
	Shard      int    `json:"shard,omitempty"`
}

// String formats the trace as a compact human-readable block, the form
// fixindex -trace prints and the slow-query log examples use.
func (t *QueryTrace) String() string {
	var b strings.Builder
	if t.Collection != "" {
		fmt.Fprintf(&b, "query %s  [collection %s shard %d]\n", t.Query, t.Collection, t.Shard)
	} else {
		fmt.Fprintf(&b, "query %s\n", t.Query)
	}
	fmt.Fprintf(&b, "  total %v  (parse %v, plan %v, probe %v, fetch %v, refine %v; workers %d)\n",
		t.Total, t.Parse, t.Plan, t.Probe, t.Fetch, t.Refine, t.Workers)
	switch {
	case t.ScanFallback:
		fmt.Fprintf(&b, "  degraded index: full scan, %d matched records, %d results\n", t.Matched, t.Count)
	case t.Entries == 0:
		fmt.Fprintf(&b, "  no index: full scan, %d matched records, %d results\n", t.Matched, t.Count)
	default:
		fmt.Fprintf(&b, "  pruning: %d entries, %d scanned -> %d candidates -> %d matched, %d results\n",
			t.Entries, t.Scanned, t.Candidates, t.Matched, t.Count)
	}
	fmt.Fprintf(&b, "  btree: %d page reads, %d cache hits, %d evictions\n",
		t.PageReads, t.CacheHits, t.Evictions)
	fmt.Fprintf(&b, "  storage: %d seq + %d random + %d cached reads, %d bytes; %d subtree reads, %d subtree bytes\n",
		t.SeqReads, t.RandomReads, t.CachedReads, t.BytesRead, t.SubtreeReads, t.SubtreeBytes)
	fmt.Fprintf(&b, "  refine: %d nodes visited", t.NodesVisited)
	return b.String()
}

// traceFromObs converts the internal trace into the public form.
func traceFromObs(tr *obs.Trace) *QueryTrace {
	return &QueryTrace{
		Query:        tr.Query,
		Start:        tr.Start,
		Total:        tr.Total,
		Parse:        tr.Phase[obs.PhaseParse],
		Plan:         tr.Phase[obs.PhasePlan],
		Probe:        tr.Phase[obs.PhaseProbe],
		Fetch:        tr.Phase[obs.PhaseFetch],
		Refine:       tr.Phase[obs.PhaseRefine],
		Entries:      tr.Entries,
		Scanned:      tr.Scanned,
		Candidates:   tr.Candidates,
		Matched:      tr.Matched,
		Count:        tr.Count,
		Workers:      tr.Workers,
		NodesVisited: tr.NodesVisited,
		PageReads:    tr.BTree.PageReads,
		PageWrites:   tr.BTree.PageWrites,
		CacheHits:    tr.BTree.CacheHits,
		Evictions:    tr.BTree.Evictions,
		SeqReads:     tr.Storage.SeqReads,
		RandomReads:  tr.Storage.RandomReads,
		CachedReads:  tr.Storage.CachedReads,
		BytesRead:    tr.Storage.BytesRead,
		SubtreeReads: tr.Storage.SubtreeReads,
		SubtreeBytes: tr.Storage.SubtreeBytes,
		ScanFallback: tr.Fallback,
		Generation:   tr.Generation,
	}
}

// A QueryOption configures one query evaluation. The same option set is
// accepted uniformly by every query method — Query, Exists,
// QueryDocuments and their Ctx variants, on both DB and View. The
// canonical constructors are Trace, ScanOnly and QueryLimits (in
// options.go, mirroring the BuildOption set); WithTrace, WithScanOnly
// and WithLimits are their deprecated spellings.
type QueryOption func(*queryConfig)

type queryConfig struct {
	trace     bool
	limits    Limits
	limitsSet bool // limits overrides the DB-wide Options.Limits
	scanOnly  bool
}

// WithTrace requests a full execution trace for this query.
//
// Deprecated: use Trace, the canonical spelling in the unified
// QueryOption set. WithTrace remains as an alias.
func WithTrace() QueryOption { return Trace() }

// Options configures the observability and resource-governance behavior
// of a DB. Set it with SetOptions before serving queries; it is not safe
// to change concurrently with running queries.
type Options struct {
	// SlowQueryThreshold enables the slow-query log: every query whose
	// total wall time reaches the threshold is reported to OnSlowQuery
	// with its full trace. Zero disables the log. Enabling it turns on
	// trace collection for every query on this DB (a query is only
	// known to be slow after it ran).
	SlowQueryThreshold time.Duration
	// OnSlowQuery receives the trace of each offending query. It is
	// called synchronously on the querying goroutine, so it must be
	// fast and safe for concurrent calls; nil disables the log.
	OnSlowQuery func(QueryTrace)
	// Limits are the default resource limits applied to every query on
	// this DB. A query's WithLimits option replaces them wholesale for
	// that query. The zero value imposes nothing.
	Limits Limits
	// ParseLimits bounds documents accepted by AddDocument; zero fields
	// keep the parser defaults, negative fields disable a bound.
	ParseLimits ParseLimits
}

// SetOptions installs observability options; see Options.
func (db *DB) SetOptions(o Options) { db.obsOpts = o }

// slowQueryEnabled reports whether every query must gather a trace for
// the slow-query log.
func (db *DB) slowQueryEnabled() bool {
	return db.obsOpts.SlowQueryThreshold > 0 && db.obsOpts.OnSlowQuery != nil
}
