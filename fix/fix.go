// Package fix is the public API of the FIX feature-based XML index
// (Zhang, Özsu, Ilyas, Aboulnaga: "FIX: Feature-based Indexing Technique
// for XML Documents", University of Waterloo TR CS-2006-07 / VLDB 2006).
//
// A DB holds a collection of XML documents in a primary storage heap.
// BuildIndex constructs a FIX index over them: every indexable unit (a
// whole document, or a depth-limited subpattern rooted at each element of
// large documents) is reduced to its bisimulation graph, translated into
// an anti-symmetric matrix, and keyed in a B-tree by the extreme
// eigenvalues of that matrix together with its root label. Queries in the
// supported XPath fragment (child and descendant axes, branching
// predicates, value-equality predicates) are answered by an eigenvalue
// range scan that prunes the search space without false negatives,
// followed by navigational refinement of the candidates.
//
// Basic use:
//
//	db, _ := fix.CreateMem()
//	db.AddDocumentString(`<article><author><email>x</email></author></article>`)
//	db.BuildIndex(fix.IndexOptions{})
//	res, _ := db.Query(`//article[author]`)
//
// # Concurrency and cancellation
//
// Index construction and candidate refinement fan out over a bounded
// worker pool (IndexOptions.Workers; zero means one worker per CPU). The
// index bytes produced are identical for every worker count. Every
// potentially long-running operation has a context-aware form —
// BuildIndexCtx, QueryCtx, ExistsCtx, QueryDocumentsCtx, RebuildIndexCtx
// — that observes cancellation promptly and returns ctx.Err(); the
// context-free methods are shorthands delegating with context.Background.
//
// # Configuring builds
//
// IndexOptions remains the stable struct form. New code should prefer
// BuildIndexWith and the functional options, which cannot break at
// compile time when option fields are added:
//
//	err := db.BuildIndexWith(ctx, fix.Workers(8), fix.DepthLimit(6))
//
// Migrating is mechanical: BuildIndex(IndexOptions{DepthLimit: 6,
// Clustered: true}) becomes BuildIndexWith(ctx, fix.DepthLimit(6),
// fix.Clustered()); a zero-value IndexOptions{} becomes
// BuildIndexWith(ctx) with no options.
//
// # Observability
//
// Every query and build is recorded in a process-wide lock-free metrics
// registry; Metrics returns it merged with the DB's cumulative B-tree
// and storage I/O counters, and PublishExpvar exposes the same view as
// an expvar variable. Per-query detail is opt-in: the Trace query
// option returns a full per-phase QueryTrace on Result.Trace, and
// Options.OnSlowQuery installs a threshold-triggered slow-query log.
// The counters are named after the paper's §6 accounting (entries,
// candidates, matched entries; page reads; sequential vs. random record
// reads) — docs/OBSERVABILITY.md is the complete reference.
package fix

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// ErrCorrupt reports that index data on disk failed validation (a page
// checksum mismatch, a torn write, structural damage). Errors returned by
// VerifyIndex and IndexHealth can be tested against it with errors.Is. A
// corrupt index never produces wrong query answers: queries degrade to a
// full scan of the primary store until RebuildIndex repairs the index.
var ErrCorrupt = core.ErrCorrupt

// DB is a document database with an optional FIX index. Concurrent
// queries are safe and lock-free: every read runs against an immutable
// published generation — a frozen B-tree image, record table, and
// tombstone set — pinned for the duration of the call, so queries scale
// across cores and never contend with writers. Concurrent ingest
// (AddDocument, IngestBatchCtx, DeleteDocument, an Ingester) is safe
// alongside them: mutations serialize on an internal ingest lock, apply
// under a write lock, and publish the next generation with one atomic
// pointer swap — in-flight queries keep reading the generation they
// pinned and never see a torn index. BuildIndex/RebuildIndex/Save also
// serialize with ingest. For repeatable reads across several queries,
// pin a snapshot explicitly with View.
type DB struct {
	dir     string
	dict    *xmltree.Dict
	store   *storage.Store
	index   *core.Index
	obsOpts Options

	// mu orders batch application and index replacement (write lock)
	// against generation freezes (read lock). ingestMu serializes the
	// whole write path — WAL append, batch apply, Save, build — and is
	// always acquired before mu. The `lockcheck: order` ranks encode
	// the documented hierarchy (ingestMu → pubMu → mu) for fixvet's
	// lockorder pass; the collection registry's mutex ranks below all
	// of them (see internal/collection).
	mu       sync.RWMutex // lockcheck: order 40
	ingestMu sync.Mutex   // lockcheck: order 20
	wal      *core.IngestLog

	// pubMu serializes generation publication. Lock order: ingestMu →
	// pubMu → mu (read); pubMu is never held while acquiring ingestMu
	// or the mu write lock.
	pubMu sync.Mutex // lockcheck: order 30
	// gen is the published generation queries pin; swapped atomically
	// by publish, never mutated in place.
	gen      atomic.Pointer[core.Generation]
	genSeq   atomic.Uint64
	liveGens atomic.Int64

	// lastCheckpoint is the unix-nano time of the last completed commit
	// (Save, Checkpoint, or an index build's absorb), seeded at
	// creation/open so checkpoint age is measured from a real baseline.
	lastCheckpoint atomic.Int64
}

// IndexOptions configures BuildIndex. The zero value indexes whole
// documents (the collection scenario) with the paper's defaults.
type IndexOptions struct {
	// DepthLimit is Algorithm 1's subpattern depth limit L. Zero indexes
	// each document as one entry; a positive limit enumerates one
	// depth-L subpattern per element, which is the right choice for
	// large documents (the paper uses 6).
	DepthLimit int
	// Clustered copies candidate subtrees into a key-ordered heap so
	// refinement I/O is sequential, trading space for query time.
	Clustered bool
	// Values integrates text nodes into the structural index via hashing
	// (paper §4.6), enabling index support for value-equality
	// predicates.
	Values bool
	// Beta is the value-hash range; 0 means the paper's default of 10.
	Beta uint32
	// EdgeBudget caps the bisimulation graph size for eigenvalue
	// computation; 0 means the paper's default of 3000 edges.
	EdgeBudget int
	// SpectrumK stores K extra eigenvalue magnitudes per entry and
	// filters candidates component-wise — the paper's §3.3 "whole set of
	// eigenvalues" refinement. 0 disables it.
	SpectrumK int
	// PaperPruning selects the paper's literal pruning bound instead of
	// the provably complete default; see DESIGN.md before enabling.
	PaperPruning bool
	// Workers bounds the worker pool used by index construction and by
	// candidate refinement at query time. Zero means one worker per
	// available CPU (GOMAXPROCS); 1 forces sequential execution. The
	// index bytes produced are identical for every value.
	Workers int
}

// BuildStats reports where the last BuildIndex spent its time. Parse,
// Bisim and Eigen are summed across workers, so on a multi-core build
// they can exceed Wall; Insert is the sequential merge into the B-tree.
type BuildStats struct {
	Workers                     int
	Records, Units              int
	Parse, Bisim, Eigen, Insert time.Duration
	Wall                        time.Duration
}

// UnitsPerSec returns indexing throughput in units per wall-clock second.
func (s BuildStats) UnitsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Units) / s.Wall.Seconds()
}

// Result reports the outcome and the pruning statistics of one query.
type Result struct {
	// Count is the number of output-node matches.
	Count int
	// Entries, Candidates and MatchedEntries expose the pruning
	// pipeline: total index entries, entries surviving the feature
	// filter, and candidates that produced at least one result.
	Entries, Candidates, MatchedEntries int
	// ScanFallback reports that the index was degraded (corruption was
	// detected, or it is stale relative to the store) and the result came
	// from a full sequential scan instead. The count is still exact.
	ScanFallback bool
	// Trace is the full execution trace when tracing was enabled for
	// this query (the Trace option, or a configured slow-query
	// log), nil otherwise.
	Trace *QueryTrace
}

// Effectiveness are the implementation-independent effectiveness
// measures of the paper's §6.2, returned by DB.Effectiveness. (This type
// was called Metrics before that name moved to the operational metrics
// snapshot — see the migration note on Metrics.)
type Effectiveness struct {
	Selectivity   float64 // 1 - rst/ent
	PruningPower  float64 // 1 - cdt/ent
	FalsePosRatio float64 // 1 - rst/cdt
}

// CreateMem creates an empty in-memory database.
func CreateMem() (*DB, error) {
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		return nil, err
	}
	db := &DB{dict: dict, store: st}
	db.lastCheckpoint.Store(time.Now().UnixNano())
	db.publish()
	return db, nil
}

// Create creates an empty database persisted under dir.
func Create(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := fileCreate(filepath.Join(dir, "data.heap"))
	if err != nil {
		return nil, err
	}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(f, dict)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, dict: dict, store: st}
	db.lastCheckpoint.Store(time.Now().UnixNano())
	db.publish()
	return db, nil
}

// Open opens a database previously persisted with Save, including its
// index if one was built. Before reading any index file it completes or
// discards a commit a crash interrupted (see core.Recover); if the index
// turns out to be corrupt or stale, the database still opens, IndexHealth
// reports the problem, and queries answer via the scan fallback.
//
// If the database was ingesting when it crashed, a valid ingest log
// survives: Open truncates the heap back to the log's committed base,
// replays every acknowledged operation (re-appending documents and
// re-tombstoning deletes), and keeps the log active — no acknowledged
// operation is lost, and operations whose group commit never completed
// are absent.
func Open(dir string) (*DB, error) {
	if err := core.Recover(dir); err != nil {
		return nil, fmt.Errorf("fix: recovering index journal: %w", err)
	}
	df, err := os.Open(filepath.Join(dir, "labels.dict"))
	if err != nil {
		return nil, err
	}
	dict, err := xmltree.ReadDict(df)
	_ = df.Close()
	if err != nil {
		return nil, err
	}
	wal, replay, err := openIngestLog(dir)
	if err != nil {
		return nil, err
	}
	f, err := fileOpen(filepath.Join(dir, "data.heap"))
	if err != nil {
		return nil, err
	}
	if wal != nil {
		// Drop everything past the log's base — a torn tail from a
		// batch whose apply the crash interrupted — before the store
		// scans its records; replay re-appends the acknowledged ops.
		_, baseEnd := wal.Base()
		if err := f.Truncate(baseEnd); err != nil {
			return nil, fmt.Errorf("fix: truncating heap to ingest log base: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("fix: truncating heap to ingest log base: %w", err)
		}
	}
	st, err := storage.OpenStore(f, dict)
	if err != nil {
		return nil, err
	}
	if wal != nil {
		if base, _ := wal.Base(); uint32(st.NumRecords()) != base {
			return nil, fmt.Errorf("fix: heap has %d records, ingest log base says %d", st.NumRecords(), base)
		}
	}
	db := &DB{dir: dir, dict: dict, store: st}
	db.lastCheckpoint.Store(time.Now().UnixNano())
	if err := db.loadTombs(wal); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, "fix.meta")); err == nil {
		db.index, err = core.Open(st, dir)
		if err != nil {
			return nil, fmt.Errorf("fix: opening index: %w", err)
		}
	}
	db.wal = wal
	if len(replay) > 0 {
		n, err := core.ReplayIngest(st, db.index, replay)
		if err != nil {
			return nil, fmt.Errorf("fix: replaying ingest log: %w", err)
		}
		obs.Default().ObserveIngestReplayed(n)
		if db.index != nil && db.index.Health() == nil {
			// The crash window between a group commit and the next Save can
			// leak evicted B-tree pages to disk under a meta page the shadow
			// journal never saw; replay then restores the record count, so
			// the staleness check that normally degrades a stale index can't
			// catch the mix. Walk the whole tree now: a failure latches
			// degraded health, the absorb below is skipped, and queries stay
			// exact through the scan fallback until RebuildIndex.
			_ = db.index.Verify()
		}
		// Converge: absorb the replayed operations into the base commit
		// before returning. Leaving the log in place would make every
		// subsequent Open truncate and replay again, and a process that
		// exits without Save (a read-only CLI command) could leak
		// evicted index pages under an unchanged btree meta — detected
		// later as corruption — while a RebuildIndex would commit a
		// record count the next truncate-and-replay no longer matches.
		// A replay that degraded the index skips the absorb (a degraded
		// index refuses Save): the log keeps guarding the acked ops
		// until RebuildIndex clears the way.
		if db.index == nil || db.index.Health() == nil {
			if err := db.commitAll(); err != nil {
				return nil, fmt.Errorf("fix: absorbing replayed ingest log: %w", err)
			}
		}
	}
	// Publish exactly one generation for the recovered state; the absorb
	// above deliberately skips publishing so a recovered database never
	// transiently exposes two.
	db.publish()
	return db, nil
}

// openIngestLog probes dir for an ingest log. A structurally valid log
// is returned with its acknowledged operations to replay; a log whose
// header never became durable (a crash during creation or reset —
// nothing in it was ever acknowledged) is removed.
func openIngestLog(dir string) (*core.IngestLog, []core.IngestOp, error) {
	path := filepath.Join(dir, core.IngestLogName)
	f, err := fileOpen(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	lg, ops, ok, err := core.OpenIngestLog(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("fix: reading ingest log: %w", err)
	}
	if !ok {
		_ = f.Close()
		if err := os.Remove(path); err != nil {
			return nil, nil, err
		}
		return nil, nil, nil
	}
	return lg, ops, nil
}

// Save flushes the database (and index, if built) to disk. It is an
// error on in-memory databases. Every file is committed atomically —
// labels.dict and fix.tomb through fsynced temp files renamed into
// place, the index through its shadow-commit journal — so a crash
// during Save leaves either the previous or the new state, never a torn
// file. Once the commit is complete the ingest log is reset to the new
// base: it is truncated only after everything it guarded is durable
// elsewhere, so there is no instant at which an acknowledged operation
// is unprotected.
//
// Save is the chunked checkpoint (see CheckpointCtx): the bulk of the
// heap fsync runs before the write locks are taken, so concurrent
// ingest stalls only for the bounded final critical section, not the
// whole absorption.
func (db *DB) Save() error { return db.Checkpoint() }

// commitAll is Save without the generation publish: it takes the write
// locks, commits every file, and resets the ingest log. Open's recovery
// absorb uses it directly so recovery publishes exactly once, at the
// end.
func (db *DB) commitAll() error {
	if db.dir == "" {
		return fmt.Errorf("fix: Save on an in-memory database")
	}
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.saveLocked()
}

// saveLocked is Save's body. Callers hold ingestMu and mu (or have
// exclusive access, as during Open); BuildIndexCtx and RebuildIndexCtx
// use it to absorb the ingest log while already holding ingestMu.
func (db *DB) saveLocked() error {
	if err := db.store.Sync(); err != nil {
		return err
	}
	if err := db.saveDict(); err != nil {
		return err
	}
	if err := db.saveTombs(); err != nil {
		return err
	}
	if db.index != nil {
		if err := db.index.Save(); err != nil {
			return err
		}
	}
	if db.wal != nil {
		if err := db.wal.Reset(uint32(db.store.NumRecords()), db.store.Size()); err != nil {
			return err
		}
	}
	db.lastCheckpoint.Store(time.Now().UnixNano())
	return nil
}

// saveDict writes labels.dict atomically: temp file, fsync, rename. The
// dictionary maps every stored record's label IDs, so a torn write here
// would make the whole database unreadable — the same crash-safety bar
// as fix.meta applies.
func (db *DB) saveDict() error {
	path := filepath.Join(db.dir, "labels.dict")
	tmp := path + ".tmp"
	df, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := db.dict.WriteTo(df); err != nil {
		_ = df.Close()
		os.Remove(tmp)
		return err
	}
	if err := df.Sync(); err != nil {
		_ = df.Close()
		os.Remove(tmp)
		return err
	}
	if err := df.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Close releases the underlying files, including the ingest log. It
// does not Save: acknowledged-but-unsaved operations stay protected by
// the log and are replayed on the next Open.
func (db *DB) Close() error {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	var first error
	if db.wal != nil {
		first = db.wal.Close()
		db.wal = nil
	}
	if err := db.store.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// AddDocument parses one XML document and appends it, returning its
// document ID. If an index exists, the document is indexed incrementally.
// The document must fit Options.ParseLimits (or the parser defaults);
// oversized input returns an error wrapping ErrDocumentLimit before
// anything is stored.
//
// AddDocument does not itself create the ingest write-ahead log — bulk
// loads stay fsync-free until Save — but once streaming ingest has
// created one (an Ingester, IngestBatchCtx, or DeleteDocument), every
// AddDocument joins the durable path: it is logged and fsynced before
// it is applied, so its acknowledgment carries the same crash guarantee.
// It is AddDocumentCtx with context.Background().
func (db *DB) AddDocument(r io.Reader) (uint32, error) {
	return db.AddDocumentCtx(context.Background(), r)
}

// AddDocumentCtx is AddDocument with a caller context (observed before
// the commit starts; a batch that has reached its WAL fsync is applied
// to completion regardless, because it is already acknowledged-durable).
func (db *DB) AddDocumentCtx(ctx context.Context, r io.Reader) (id uint32, err error) {
	defer db.contain("AddDocumentCtx", true, &err)
	// The raw bytes are buffered for the ingest WAL, so the read itself
	// must be bounded like the streaming parse: ReadDocument stops at the
	// MaxBytes limit instead of letting an unbounded reader exhaust
	// memory before the parser's guards ever run.
	raw, err := xmltree.ReadDocument(r, db.parseLimits())
	if err != nil {
		return 0, err
	}
	n, err := xmltree.ParseWithLimits(bytes.NewReader(raw), db.parseLimits())
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	p := &pendingOp{kind: core.IngestOpInsert, xml: raw, tree: n}
	db.ingestMu.Lock()
	err = db.commitLocked(ctx, []*pendingOp{p})
	db.ingestMu.Unlock()
	if err != nil {
		return 0, err
	}
	return p.rec, nil
}

// AddDocumentString is AddDocument for a string.
func (db *DB) AddDocumentString(s string) (uint32, error) {
	return db.AddDocument(strings.NewReader(s))
}

// NumDocuments returns the number of stored documents.
func (db *DB) NumDocuments() int { return db.store.NumRecords() }

// Document re-serializes the stored document as XML.
func (db *DB) Document(id uint32) (string, error) {
	cur, err := db.store.Cursor(id)
	if err != nil {
		return "", err
	}
	n, err := cur.Decode(0)
	if err != nil {
		return "", err
	}
	return xmltree.MarshalString(n), nil
}

// BuildIndex constructs the FIX index over all stored documents,
// replacing any previous index. It is BuildIndexCtx with
// context.Background().
func (db *DB) BuildIndex(opts IndexOptions) error {
	return db.BuildIndexCtx(context.Background(), opts)
}

// BuildIndexCtx constructs the FIX index over all stored documents,
// replacing any previous index. Construction fans out over
// opts.Workers goroutines (0 = one per CPU) and observes ctx: a
// cancelled build stops promptly, returns ctx.Err(), and leaves the
// database consistent — the previous index commit (or its absence)
// still governs what a reopened database sees, and BuildIndexCtx can
// simply be run again.
//
// A panic during construction is contained: it returns as an error
// wrapping ErrPanic, and the previous index (if any) stays in place —
// the build works on a replacement, so nothing live was touched.
func (db *DB) BuildIndexCtx(ctx context.Context, opts IndexOptions) (err error) {
	defer db.contain("BuildIndexCtx", false, &err)
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	ix, err := core.BuildCtx(ctx, db.store, core.Options{
		DepthLimit:   opts.DepthLimit,
		Clustered:    opts.Clustered,
		Values:       opts.Values,
		Beta:         opts.Beta,
		EdgeBudget:   opts.EdgeBudget,
		SpectrumK:    opts.SpectrumK,
		PaperPruning: opts.PaperPruning,
		Workers:      opts.Workers,
		Dir:          db.dir,
	})
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.index = ix
	db.mu.Unlock()
	// Publish before absorbing the ingest log: the new index was built
	// from the full store, so it already covers any WAL-applied records,
	// and queries should start using it even if the absorb fails.
	db.publish()
	return db.absorbIngestLogLocked("build")
}

// indexRef snapshots the current index pointer under the read lock.
// Index builds swap the field under the write lock, so any reader that
// can run concurrently with a rebuild — accessors, metrics, the
// background maintenance loops — must take its snapshot here rather
// than read db.index bare.
func (db *DB) indexRef() *core.Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.index
}

// HasIndex reports whether an index is available.
func (db *DB) HasIndex() bool { return db.indexRef() != nil }

// IndexHealth returns nil when there is no index or the index is healthy,
// and otherwise the reason the index was degraded (test with errors.Is
// against ErrCorrupt). A degraded index still answers queries correctly
// via the scan fallback; RebuildIndex restores full speed.
func (db *DB) IndexHealth() error {
	if ix := db.indexRef(); ix != nil {
		return ix.Health()
	}
	return nil
}

// VerifyIndex checks the on-disk integrity of the index: every B-tree
// page checksum and structure, entry counts, and that every entry points
// at an existing record. It returns nil for a sound index, an error
// wrapping ErrCorrupt otherwise, and an error if no index exists.
func (db *DB) VerifyIndex() error {
	ix := db.indexRef()
	if ix == nil {
		return fmt.Errorf("fix: no index to verify")
	}
	return ix.Verify()
}

// RebuildIndex reconstructs the index from the primary store using the
// options it was built with, replacing the B-tree (and clustered heap)
// files. It is the repair path for a corrupt or stale index.
func (db *DB) RebuildIndex() error {
	return db.RebuildIndexCtx(context.Background())
}

// RebuildIndexCtx is RebuildIndex with cancellation; see BuildIndexCtx
// for the semantics of an interrupted build.
func (db *DB) RebuildIndexCtx(ctx context.Context) (err error) {
	defer db.contain("RebuildIndexCtx", false, &err)
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	if db.index == nil {
		return fmt.Errorf("fix: no index to rebuild")
	}
	ix, err := core.BuildCtx(ctx, db.store, db.index.Options())
	if err != nil {
		return err
	}
	if db.dir != "" {
		// Persist before publishing so readers never see an index whose
		// pages are mid-flush.
		if err := ix.Save(); err != nil {
			return err
		}
	}
	db.mu.Lock()
	db.index = ix
	db.mu.Unlock()
	db.publish()
	return db.absorbIngestLogLocked("rebuild")
}

// absorbIngestLogLocked commits the database and resets the ingest log
// after an index build has covered the log's guarded records. Without
// it the next Open would truncate the heap back under the fresh index's
// committed record count and replay operations the tree already holds,
// duplicating entries. The caller holds ingestMu.
func (db *DB) absorbIngestLogLocked(why string) error {
	if db.dir == "" || db.wal == nil {
		return nil
	}
	db.mu.Lock()
	err := db.saveLocked()
	db.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fix: absorbing ingest log after %s: %w", why, err)
	}
	return nil
}

// IndexEntries returns the number of index entries, or 0 without an
// index.
func (db *DB) IndexEntries() int {
	if ix := db.indexRef(); ix != nil {
		return ix.Entries()
	}
	return 0
}

// IndexSizeBytes returns the on-disk footprint of the index.
func (db *DB) IndexSizeBytes() int64 {
	if ix := db.indexRef(); ix != nil {
		return ix.SizeBytes()
	}
	return 0
}

// IndexBuildTime returns the wall-clock time of the last BuildIndex.
func (db *DB) IndexBuildTime() time.Duration {
	if ix := db.indexRef(); ix != nil {
		return ix.BuildTime()
	}
	return 0
}

// IndexBuildStats returns the per-phase timing breakdown of the last
// BuildIndex in this process. It is the zero value without an index or
// for an index loaded from disk.
func (db *DB) IndexBuildStats() BuildStats {
	ix := db.indexRef()
	if ix == nil {
		return BuildStats{}
	}
	s := ix.Stats()
	return BuildStats{
		Workers: s.Workers,
		Records: s.Records,
		Units:   s.Units,
		Parse:   s.Parse,
		Bisim:   s.Bisim,
		Eigen:   s.Eigen,
		Insert:  s.Insert,
		Wall:    s.Wall,
	}
}

// workers returns the worker-pool bound queries should use: the indexed
// setting when an index exists, otherwise the default (one per CPU).
func (db *DB) workers() int {
	if ix := db.indexRef(); ix != nil {
		return ix.Options().Workers
	}
	return 0
}

// Query evaluates the XPath expression. With an index it runs the
// pruning + refinement pipeline; without one it falls back to a full
// navigational scan (Candidates and Entries are then zero). It is
// QueryCtx with context.Background().
func (db *DB) Query(expr string, opts ...QueryOption) (Result, error) {
	return db.QueryCtx(context.Background(), expr, opts...)
}

// QueryCtx is Query with cancellation: candidate refinement (and the
// scan fallback) fans records out over the worker pool and observes ctx,
// returning ctx.Err() promptly once it is cancelled — the refinement
// loop re-checks the context every few dozen node visits, so even one
// enormous subtree cannot stall a deadline.
//
// Resource governance: the query runs under the DB-wide Options.Limits
// unless QueryLimits overrides them. A Timeout wraps ctx with
// context.WithTimeout (expiry returns context.DeadlineExceeded); work
// budgets return an error wrapping ErrBudgetExceeded; a panic anywhere
// below the API comes back as an error wrapping ErrPanic instead of
// crashing the process. On any of these the Result still carries the
// partial trace (when tracing was on) attributing where the time went.
//
// Every query is recorded in the process-wide metrics registry (see
// Metrics) — a handful of atomic adds. Pass Trace to additionally
// collect a full per-phase execution trace on Result.Trace.
func (db *DB) QueryCtx(ctx context.Context, expr string, opts ...QueryOption) (Result, error) {
	v := db.View()
	defer v.Close()
	return v.QueryCtx(ctx, expr, opts...)
}

// Exists reports whether the query has at least one match. It is
// ExistsCtx with context.Background().
func (db *DB) Exists(expr string, opts ...QueryOption) (bool, error) {
	return db.ExistsCtx(context.Background(), expr, opts...)
}

// ExistsCtx is Exists with cancellation; verification fans out over the
// worker pool and the first match stops the remaining workers. It pins
// the current generation for the duration of the call; see View.ExistsCtx.
func (db *DB) ExistsCtx(ctx context.Context, expr string, opts ...QueryOption) (bool, error) {
	v := db.View()
	defer v.Close()
	return v.ExistsCtx(ctx, expr, opts...)
}

// QueryDocuments returns the IDs of documents containing at least one
// match, in document order. It is QueryDocumentsCtx with
// context.Background().
func (db *DB) QueryDocuments(expr string, opts ...QueryOption) ([]uint32, error) {
	return db.QueryDocumentsCtx(context.Background(), expr, opts...)
}

// QueryDocumentsCtx is QueryDocuments with cancellation. Documents are
// verified in parallel over the worker pool; the result order is still
// document order regardless of the worker count. It pins the current
// generation for the duration of the call; see View.QueryDocumentsCtx.
func (db *DB) QueryDocumentsCtx(ctx context.Context, expr string, opts ...QueryOption) ([]uint32, error) {
	v := db.View()
	defer v.Close()
	return v.QueryDocumentsCtx(ctx, expr, opts...)
}

// Effectiveness evaluates the query and reports the paper's §6.2
// implementation-independent effectiveness measures. It requires an
// index. (Before the Snapshot→Metrics rename this method was called
// Metrics; DB.Metrics now returns the operational metrics snapshot.)
func (db *DB) Effectiveness(expr string) (Effectiveness, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.index == nil {
		return Effectiveness{}, fmt.Errorf("fix: Effectiveness requires an index")
	}
	q, err := xpath.Parse(expr)
	if err != nil {
		return Effectiveness{}, err
	}
	m, err := db.index.Evaluate(q)
	if err != nil {
		return Effectiveness{}, err
	}
	return Effectiveness{Selectivity: m.Sel, PruningPower: m.PP, FalsePosRatio: m.FPR}, nil
}
