// Package fix is the public API of the FIX feature-based XML index
// (Zhang, Özsu, Ilyas, Aboulnaga: "FIX: Feature-based Indexing Technique
// for XML Documents", University of Waterloo TR CS-2006-07 / VLDB 2006).
//
// A DB holds a collection of XML documents in a primary storage heap.
// BuildIndex constructs a FIX index over them: every indexable unit (a
// whole document, or a depth-limited subpattern rooted at each element of
// large documents) is reduced to its bisimulation graph, translated into
// an anti-symmetric matrix, and keyed in a B-tree by the extreme
// eigenvalues of that matrix together with its root label. Queries in the
// supported XPath fragment (child and descendant axes, branching
// predicates, value-equality predicates) are answered by an eigenvalue
// range scan that prunes the search space without false negatives,
// followed by navigational refinement of the candidates.
//
// Basic use:
//
//	db, _ := fix.CreateMem()
//	db.AddDocumentString(`<article><author><email>x</email></author></article>`)
//	db.BuildIndex(fix.IndexOptions{})
//	res, _ := db.Query(`//article[author]`)
package fix

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/nok"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
	"github.com/fix-index/fix/internal/xpath"
)

// ErrCorrupt reports that index data on disk failed validation (a page
// checksum mismatch, a torn write, structural damage). Errors returned by
// VerifyIndex and IndexHealth can be tested against it with errors.Is. A
// corrupt index never produces wrong query answers: queries degrade to a
// full scan of the primary store until RebuildIndex repairs the index.
var ErrCorrupt = core.ErrCorrupt

// DB is a document database with an optional FIX index. It is not safe
// for concurrent mutation; concurrent queries are safe once the index is
// built.
type DB struct {
	dir   string
	dict  *xmltree.Dict
	store *storage.Store
	index *core.Index
}

// IndexOptions configures BuildIndex. The zero value indexes whole
// documents (the collection scenario) with the paper's defaults.
type IndexOptions struct {
	// DepthLimit is Algorithm 1's subpattern depth limit L. Zero indexes
	// each document as one entry; a positive limit enumerates one
	// depth-L subpattern per element, which is the right choice for
	// large documents (the paper uses 6).
	DepthLimit int
	// Clustered copies candidate subtrees into a key-ordered heap so
	// refinement I/O is sequential, trading space for query time.
	Clustered bool
	// Values integrates text nodes into the structural index via hashing
	// (paper §4.6), enabling index support for value-equality
	// predicates.
	Values bool
	// Beta is the value-hash range; 0 means the paper's default of 10.
	Beta uint32
	// EdgeBudget caps the bisimulation graph size for eigenvalue
	// computation; 0 means the paper's default of 3000 edges.
	EdgeBudget int
	// SpectrumK stores K extra eigenvalue magnitudes per entry and
	// filters candidates component-wise — the paper's §3.3 "whole set of
	// eigenvalues" refinement. 0 disables it.
	SpectrumK int
	// PaperPruning selects the paper's literal pruning bound instead of
	// the provably complete default; see DESIGN.md before enabling.
	PaperPruning bool
}

// Result reports the outcome and the pruning statistics of one query.
type Result struct {
	// Count is the number of output-node matches.
	Count int
	// Entries, Candidates and MatchedEntries expose the pruning
	// pipeline: total index entries, entries surviving the feature
	// filter, and candidates that produced at least one result.
	Entries, Candidates, MatchedEntries int
	// ScanFallback reports that the index was degraded (corruption was
	// detected, or it is stale relative to the store) and the result came
	// from a full sequential scan instead. The count is still exact.
	ScanFallback bool
}

// Metrics are the implementation-independent effectiveness measures of
// the paper's §6.2.
type Metrics struct {
	Selectivity   float64 // 1 - rst/ent
	PruningPower  float64 // 1 - cdt/ent
	FalsePosRatio float64 // 1 - rst/cdt
}

// CreateMem creates an empty in-memory database.
func CreateMem() (*DB, error) {
	dict := xmltree.NewDict()
	st, err := storage.NewStore(storage.NewMemFile(), dict)
	if err != nil {
		return nil, err
	}
	return &DB{dict: dict, store: st}, nil
}

// Create creates an empty database persisted under dir.
func Create(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := storage.Create(filepath.Join(dir, "data.heap"))
	if err != nil {
		return nil, err
	}
	dict := xmltree.NewDict()
	st, err := storage.NewStore(f, dict)
	if err != nil {
		return nil, err
	}
	return &DB{dir: dir, dict: dict, store: st}, nil
}

// Open opens a database previously persisted with Save, including its
// index if one was built. Before reading any index file it completes or
// discards a commit a crash interrupted (see core.Recover); if the index
// turns out to be corrupt or stale, the database still opens, IndexHealth
// reports the problem, and queries answer via the scan fallback.
func Open(dir string) (*DB, error) {
	if err := core.Recover(dir); err != nil {
		return nil, fmt.Errorf("fix: recovering index journal: %w", err)
	}
	df, err := os.Open(filepath.Join(dir, "labels.dict"))
	if err != nil {
		return nil, err
	}
	dict, err := xmltree.ReadDict(df)
	df.Close()
	if err != nil {
		return nil, err
	}
	f, err := storage.Open(filepath.Join(dir, "data.heap"))
	if err != nil {
		return nil, err
	}
	st, err := storage.OpenStore(f, dict)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, dict: dict, store: st}
	if _, err := os.Stat(filepath.Join(dir, "fix.meta")); err == nil {
		db.index, err = core.Open(st, dir)
		if err != nil {
			return nil, fmt.Errorf("fix: opening index: %w", err)
		}
	}
	return db, nil
}

// Save flushes the database (and index, if built) to disk. It is an
// error on in-memory databases.
func (db *DB) Save() error {
	if db.dir == "" {
		return fmt.Errorf("fix: Save on an in-memory database")
	}
	if err := db.store.Sync(); err != nil {
		return err
	}
	df, err := os.Create(filepath.Join(db.dir, "labels.dict"))
	if err != nil {
		return err
	}
	if _, err := db.dict.WriteTo(df); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	if db.index != nil {
		return db.index.Save()
	}
	return nil
}

// Close releases the underlying files.
func (db *DB) Close() error {
	return db.store.Close()
}

// AddDocument parses one XML document and appends it, returning its
// document ID. If an index exists, the document is indexed incrementally.
func (db *DB) AddDocument(r io.Reader) (uint32, error) {
	n, err := xmltree.Parse(r)
	if err != nil {
		return 0, err
	}
	rec, err := db.store.AppendTree(n)
	if err != nil {
		return 0, err
	}
	if db.index != nil {
		if err := db.index.InsertDocument(rec); err != nil {
			return rec, fmt.Errorf("fix: document stored but not indexed: %w", err)
		}
	}
	return rec, nil
}

// AddDocumentString is AddDocument for a string.
func (db *DB) AddDocumentString(s string) (uint32, error) {
	return db.AddDocument(strings.NewReader(s))
}

// NumDocuments returns the number of stored documents.
func (db *DB) NumDocuments() int { return db.store.NumRecords() }

// Document re-serializes the stored document as XML.
func (db *DB) Document(id uint32) (string, error) {
	cur, err := db.store.Cursor(id)
	if err != nil {
		return "", err
	}
	n, err := cur.Decode(0)
	if err != nil {
		return "", err
	}
	return xmltree.MarshalString(n), nil
}

// BuildIndex constructs the FIX index over all stored documents,
// replacing any previous index.
func (db *DB) BuildIndex(opts IndexOptions) error {
	ix, err := core.Build(db.store, core.Options{
		DepthLimit:   opts.DepthLimit,
		Clustered:    opts.Clustered,
		Values:       opts.Values,
		Beta:         opts.Beta,
		EdgeBudget:   opts.EdgeBudget,
		SpectrumK:    opts.SpectrumK,
		PaperPruning: opts.PaperPruning,
		Dir:          db.dir,
	})
	if err != nil {
		return err
	}
	db.index = ix
	return nil
}

// HasIndex reports whether an index is available.
func (db *DB) HasIndex() bool { return db.index != nil }

// IndexHealth returns nil when there is no index or the index is healthy,
// and otherwise the reason the index was degraded (test with errors.Is
// against ErrCorrupt). A degraded index still answers queries correctly
// via the scan fallback; RebuildIndex restores full speed.
func (db *DB) IndexHealth() error {
	if db.index == nil {
		return nil
	}
	return db.index.Health()
}

// VerifyIndex checks the on-disk integrity of the index: every B-tree
// page checksum and structure, entry counts, and that every entry points
// at an existing record. It returns nil for a sound index, an error
// wrapping ErrCorrupt otherwise, and an error if no index exists.
func (db *DB) VerifyIndex() error {
	if db.index == nil {
		return fmt.Errorf("fix: no index to verify")
	}
	return db.index.Verify()
}

// RebuildIndex reconstructs the index from the primary store using the
// options it was built with, replacing the B-tree (and clustered heap)
// files. It is the repair path for a corrupt or stale index.
func (db *DB) RebuildIndex() error {
	if db.index == nil {
		return fmt.Errorf("fix: no index to rebuild")
	}
	ix, err := core.Build(db.store, db.index.Options())
	if err != nil {
		return err
	}
	db.index = ix
	if db.dir != "" {
		return ix.Save()
	}
	return nil
}

// IndexEntries returns the number of index entries, or 0 without an
// index.
func (db *DB) IndexEntries() int {
	if db.index == nil {
		return 0
	}
	return db.index.Entries()
}

// IndexSizeBytes returns the on-disk footprint of the index.
func (db *DB) IndexSizeBytes() int64 {
	if db.index == nil {
		return 0
	}
	return db.index.SizeBytes()
}

// IndexBuildTime returns the wall-clock time of the last BuildIndex.
func (db *DB) IndexBuildTime() time.Duration {
	if db.index == nil {
		return 0
	}
	return db.index.BuildTime()
}

// Query evaluates the XPath expression. With an index it runs the
// pruning + refinement pipeline; without one it falls back to a full
// navigational scan (Candidates and Entries are then zero).
func (db *DB) Query(expr string) (Result, error) {
	q, err := xpath.Parse(expr)
	if err != nil {
		return Result{}, err
	}
	if db.index != nil && db.index.Covered(q) {
		res, err := db.index.Query(q)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Count:          res.Count,
			Entries:        res.Entries,
			Candidates:     res.Candidates,
			MatchedEntries: res.Matched,
			ScanFallback:   res.Fallback,
		}, nil
	}
	count, err := db.scanCount(q)
	if err != nil {
		return Result{}, err
	}
	return Result{Count: count}, nil
}

// Exists reports whether the query has at least one match.
func (db *DB) Exists(expr string) (bool, error) {
	q, err := xpath.Parse(expr)
	if err != nil {
		return false, err
	}
	if db.index != nil && db.index.Covered(q) {
		return db.index.Exists(q)
	}
	nq, err := nok.Compile(q.Tree(), db.dict)
	if err != nil {
		return false, err
	}
	for rec := 0; rec < db.store.NumRecords(); rec++ {
		cur, err := db.store.Cursor(uint32(rec))
		if err != nil {
			return false, err
		}
		if nq.Exists(cur, 0) {
			return true, nil
		}
	}
	return false, nil
}

// QueryDocuments returns the IDs of documents containing at least one
// match, in document order.
func (db *DB) QueryDocuments(expr string) ([]uint32, error) {
	q, err := xpath.Parse(expr)
	if err != nil {
		return nil, err
	}
	nq, err := nok.Compile(q.Tree(), db.dict)
	if err != nil {
		return nil, err
	}
	var scan func(rec uint32) (bool, error)
	if db.index != nil && db.index.Covered(q) {
		cands, _, err := db.index.Candidates(q)
		switch {
		case errors.Is(err, core.ErrDegraded):
			// The index cannot be trusted; scan every document instead.
			break
		case err != nil:
			return nil, err
		default:
			candDocs := make(map[uint32]bool, len(cands))
			for _, c := range cands {
				candDocs[c.Primary.Rec()] = true
			}
			scan = func(rec uint32) (bool, error) {
				if !candDocs[rec] {
					return false, nil
				}
				cur, err := db.store.Cursor(rec)
				if err != nil {
					return false, err
				}
				return nq.Exists(cur, 0), nil
			}
		}
	}
	if scan == nil {
		scan = func(rec uint32) (bool, error) {
			cur, err := db.store.Cursor(rec)
			if err != nil {
				return false, err
			}
			return nq.Exists(cur, 0), nil
		}
	}
	var out []uint32
	for rec := 0; rec < db.store.NumRecords(); rec++ {
		ok, err := scan(uint32(rec))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, uint32(rec))
		}
	}
	return out, nil
}

// Metrics evaluates the query and reports the paper's §6.2
// implementation-independent effectiveness measures. It requires an
// index.
func (db *DB) Metrics(expr string) (Metrics, error) {
	if db.index == nil {
		return Metrics{}, fmt.Errorf("fix: Metrics requires an index")
	}
	q, err := xpath.Parse(expr)
	if err != nil {
		return Metrics{}, err
	}
	m, err := db.index.Evaluate(q)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{Selectivity: m.Sel, PruningPower: m.PP, FalsePosRatio: m.FPR}, nil
}

func (db *DB) scanCount(q *xpath.Path) (int, error) {
	nq, err := nok.Compile(q.Tree(), db.dict)
	if err != nil {
		return 0, err
	}
	total := 0
	for rec := 0; rec < db.store.NumRecords(); rec++ {
		cur, err := db.store.Cursor(uint32(rec))
		if err != nil {
			return 0, err
		}
		total += nq.Count(cur, 0)
	}
	return total, nil
}
