package fix

import (
	"path/filepath"
	"testing"
)

var docs = []string{
	`<article><title>a</title><author><email>e1</email></author></article>`,
	`<article><title>b</title><author><phone>p1</phone><email>e2</email></author></article>`,
	`<book><title>c</title><author><address>x</address></author></book>`,
	`<article><title>d</title></article>`,
}

func newTestDB(t *testing.T, opts IndexOptions) *DB {
	t.Helper()
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(opts); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryAndExists(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	res, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 2 {
		t.Errorf("count = %d, want 2", res.Count)
	}
	if res.Entries != len(docs) {
		t.Errorf("entries = %d, want %d", res.Entries, len(docs))
	}
	ok, err := db.Exists("//author[phone]")
	if err != nil || !ok {
		t.Errorf("Exists(//author[phone]) = %v, %v; want true", ok, err)
	}
	ok, err = db.Exists("//book/author/email")
	if err != nil || ok {
		t.Errorf("Exists(//book/author/email) = %v, %v; want false", ok, err)
	}
}

func TestQueryDocuments(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	ids, err := db.QueryDocuments("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v, want [0 1]", ids)
	}
}

func TestMetrics(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	m, err := db.Effectiveness("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if m.Selectivity != 0.5 {
		t.Errorf("selectivity = %v, want 0.5", m.Selectivity)
	}
	if m.PruningPower < 0 || m.PruningPower > m.Selectivity {
		t.Errorf("pruning power %v out of range [0, %v]", m.PruningPower, m.Selectivity)
	}
}

func TestUnindexedFallback(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query("//article/title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Errorf("count = %d, want 3", res.Count)
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	s, err := db.Document(0)
	if err != nil {
		t.Fatal(err)
	}
	if s != docs[0] {
		t.Errorf("document 0 = %q, want %q", s, docs[0])
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	dbdir := filepath.Join(dir, "db")
	db, err := Create(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(IndexOptions{Clustered: true}); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.HasIndex() {
		t.Fatal("reopened database lost its index")
	}
	got, err := re.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("reopened query = %+v, want %+v", got, want)
	}
	if re.NumDocuments() != len(docs) {
		t.Errorf("reopened documents = %d, want %d", re.NumDocuments(), len(docs))
	}
}

func TestValueIndexFacade(t *testing.T) {
	db := newTestDB(t, IndexOptions{Values: true, Beta: 4})
	res, err := db.Query(`//author[email="e2"]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Errorf("count = %d, want 1", res.Count)
	}
}

func TestAddDocumentAfterIndex(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	id, err := db.AddDocumentString(`<article><title>late</title><author><email>z</email></author></article>`)
	if err != nil {
		t.Fatal(err)
	}
	if id != uint32(len(docs)) {
		t.Errorf("id = %d", id)
	}
	res, err := db.Query("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Errorf("count after incremental add = %d, want 3", res.Count)
	}
	if res.Entries != len(docs)+1 {
		t.Errorf("entries = %d, want %d", res.Entries, len(docs)+1)
	}
}

func TestErrorPaths(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddDocumentString("<unclosed>"); err == nil {
		t.Error("malformed document accepted")
	}
	if err := db.Save(); err == nil {
		t.Error("Save on in-memory database succeeded")
	}
	if _, err := db.Effectiveness("//a"); err == nil {
		t.Error("Metrics without an index succeeded")
	}
	if _, err := db.Query("not a path"); err == nil {
		t.Error("malformed query accepted")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open on empty dir succeeded")
	}
	if _, err := db.Document(99); err == nil {
		t.Error("Document out of range succeeded")
	}
}

func TestUncoveredQueryFallsBack(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddDocumentString(`<a><b><c><d><e/></d></c></b></a>`); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildIndex(IndexOptions{DepthLimit: 2}); err != nil {
		t.Fatal(err)
	}
	// Depth-4 query exceeds the limit; the facade must still answer it
	// via the scan fallback.
	res, err := db.Query("//b/c/d/e")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 1 {
		t.Errorf("fallback count = %d, want 1", res.Count)
	}
	if res.Entries != 0 {
		t.Errorf("fallback should report no pruning stats, got %+v", res)
	}
	ok, err := db.Exists("//b/c/d/e")
	if err != nil || !ok {
		t.Errorf("Exists fallback = %v, %v", ok, err)
	}
	ids, err := db.QueryDocuments("//b/c/d/e")
	if err != nil || len(ids) != 1 {
		t.Errorf("QueryDocuments fallback = %v, %v", ids, err)
	}
}
