package fix

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// manyDocs returns a deterministic corpus large enough to span several
// build batches, with label pairs appearing for the first time at
// varying records so the encoder's assignment order is exercised.
func manyDocs(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r, s, t, u := i%7, (i*3)%5, i%11, (i*5)%9
		out = append(out, fmt.Sprintf(
			`<r%d><s%d><t%d>v%d</t%d><t%d/></s%d><u%d><s%d/></u%d></r%d>`,
			r, s, t, i%3, t, (t+1)%11, s, u, (s+2)%5, u, r))
	}
	return out
}

// buildTo creates an on-disk database under dir, adds docs, builds the
// index with opts, and saves everything.
func buildTo(t *testing.T, dir string, docs []string, opts IndexOptions) {
	t.Helper()
	db, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(opts); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBuildByteIdentical asserts the tentpole guarantee: the
// index files a Workers=8 build writes are byte-for-byte identical to
// the sequential build's, for both the collection and the depth-limited
// scenario.
func TestParallelBuildByteIdentical(t *testing.T) {
	docs := manyDocs(150)
	for _, opts := range []IndexOptions{
		{},
		{DepthLimit: 2, SpectrumK: 2},
	} {
		name := fmt.Sprintf("depth=%d", opts.DepthLimit)
		t.Run(name, func(t *testing.T) {
			seqDir := filepath.Join(t.TempDir(), "seq")
			parDir := filepath.Join(t.TempDir(), "par")
			seqOpts, parOpts := opts, opts
			seqOpts.Workers = 1
			parOpts.Workers = 8
			buildTo(t, seqDir, docs, seqOpts)
			buildTo(t, parDir, docs, parOpts)
			for _, name := range []string{"fix.btree", "fix.edges", "fix.meta"} {
				a, err := os.ReadFile(filepath.Join(seqDir, name))
				if err != nil {
					t.Fatal(err)
				}
				b, err := os.ReadFile(filepath.Join(parDir, name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("%s differs between Workers=1 (%d bytes) and Workers=8 (%d bytes)", name, len(a), len(b))
				}
			}
		})
	}
}

// TestConcurrentQueries runs queries from many goroutines against one
// DB; under -race this asserts the whole query path (B-tree page cache
// included) is safe for concurrent readers.
func TestConcurrentQueries(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range manyDocs(60) {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndexWith(context.Background(), Workers(4)); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("//r1[s3]")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := db.Query("//r1[s3]")
				if err != nil {
					errs <- err
					return
				}
				if res.Count != want.Count {
					errs <- fmt.Errorf("concurrent count = %d, want %d", res.Count, want.Count)
					return
				}
				if _, err := db.Exists("//u4/s2"); err != nil {
					errs <- err
					return
				}
				if _, err := db.QueryDocuments("//s3[t5]"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCancelledBuildLeavesDBUsable cancels a build and checks the
// database survives: the old commit still opens, and a fresh build
// repairs everything.
func TestCancelledBuildLeavesDBUsable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	docs := manyDocs(80)
	buildTo(t, dir, docs, IndexOptions{})

	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("//r1[s3]")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.BuildIndexCtx(ctx, IndexOptions{Workers: 4}); err != context.Canceled {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The cancelled build may have left a partial fix.btree behind; the
	// committed fix.meta still governs, so reopening must yield either a
	// working index or the scan fallback — and in both cases the same
	// answer.
	db, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.Query("//r1[s3]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count {
		t.Errorf("count after cancelled build = %d, want %d", res.Count, want.Count)
	}
	if err := db.RebuildIndexCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err = db.Query("//r1[s3]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want.Count || res.ScanFallback {
		t.Errorf("after rebuild: count=%d fallback=%v, want count=%d fallback=false", res.Count, res.ScanFallback, want.Count)
	}
}
