package fix

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// RootLabel returns the name of a document's root element without
// building a tree: it scans tokens until the first start element and
// stops. It is the routing seam for sharded collections — documents are
// placed (and absolute /label queries targeted) by root label, so the
// router needs the label long before the document is parsed against any
// shard's limits. Input that ends, or turns syntactically invalid,
// before a root element yields an error.
func RootLabel(r io.Reader) (string, error) {
	dec := xml.NewDecoder(r)
	dec.Strict = false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return "", fmt.Errorf("fix: no root element in document")
		}
		if err != nil {
			return "", fmt.Errorf("fix: reading root element: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name.Local, nil
		}
	}
}

// RootLabelString is RootLabel for an in-memory document.
func RootLabelString(doc string) (string, error) {
	return RootLabel(strings.NewReader(doc))
}
