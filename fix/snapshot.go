package fix

import (
	"time"

	"github.com/fix-index/fix/internal/obs"
)

// Metrics is a point-in-time view of the process-wide metrics registry
// merged with this DB's cumulative subsystem counters. The registry part
// (query/build totals, latency) is shared by every DB in the process;
// the BTree/Storage parts are this DB's own exact counters. All fields
// carry JSON tags, so a Metrics marshals directly onto a metrics
// endpoint (cmd/fixserve serves exactly this at /metrics).
//
// Migration note: this type was named Snapshot until the generation
// read path arrived, where "snapshot" means a pinned point-in-time View
// of the data; the operational counters are now Metrics/DB.Metrics, and
// Snapshot/DB.Snapshot remain as deprecated aliases.
type Metrics struct {
	// Query totals. Scanned/Candidates/Matched/Results sum the §6.2
	// pipeline counters over all queries; NodesVisited covers traced
	// queries only (untraced refinement skips the counter).
	Queries       int64 `json:"queries"`
	QueryErrors   int64 `json:"query_errors"`
	ScanFallbacks int64 `json:"scan_fallbacks"`
	Scanned       int64 `json:"entries_scanned"`
	Candidates    int64 `json:"candidates"`
	Matched       int64 `json:"matched_entries"`
	Results       int64 `json:"results"`
	NodesVisited  int64 `json:"nodes_visited"`

	// Resource-governance rejections, by class. RejectedAdmission is
	// incremented by servers (cmd/fixserve) when the admission gate turns
	// a request away; the other three count queries stopped by their
	// deadline, stopped by a Limits budget, and panics converted to
	// errors by the containment barriers. See docs/ROBUSTNESS.md.
	RejectedAdmission int64 `json:"queries_rejected_admission"`
	DeadlineExceeded  int64 `json:"queries_deadline_exceeded"`
	BudgetExceeded    int64 `json:"queries_budget_exceeded"`
	PanicsRecovered   int64 `json:"panics_recovered"`

	// Build totals across the process.
	Builds       int64         `json:"builds"`
	BuildRecords int64         `json:"build_records"`
	BuildUnits   int64         `json:"build_units"`
	BuildWall    time.Duration `json:"build_wall_ns"`

	// Ingest pipeline totals across the process: committed group-commit
	// batches, the inserts/deletes they carried, the fsyncs they cost,
	// operations rejected by backpressure, and operations replayed from
	// the ingest WAL during crash recovery. See docs/ROBUSTNESS.md.
	IngestBatches   int64 `json:"ingest_batches"`
	IngestDocs      int64 `json:"ingest_docs"`
	IngestDeletes   int64 `json:"ingest_deletes"`
	IngestFsyncs    int64 `json:"ingest_fsyncs"`
	IngestQueueFull int64 `json:"ingest_queue_full"`
	IngestReplayed  int64 `json:"ingest_replayed"`

	// Online-maintenance totals across the process: WAL checkpoints
	// (and failed attempts), scrub passes (and passes that found
	// damage), and automatic rebuilds of degraded indexes.
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	ScrubPasses        int64 `json:"scrub_passes"`
	ScrubFindings      int64 `json:"scrub_findings"`
	AutoRebuilds       int64 `json:"auto_rebuilds"`
	AutoRebuildErrors  int64 `json:"auto_rebuild_errors"`

	// Latency is the bounded query-latency histogram with estimated
	// quantiles (upper-bound error is one power-of-two bucket).
	Latency obs.LatencySnapshot `json:"query_latency"`

	// This DB's shape and cumulative I/O. DocumentsDeleted counts
	// tombstoned records still occupying the heap; IngestLag is the
	// number of WAL operations applied in memory but not yet folded into
	// a durable index commit, WALBytes the log's on-disk size, and
	// LastCheckpointAge how long ago that commit happened — together
	// they size the replay window a crash right now would cost
	// (Checkpoint resets all three). Generation is the publish sequence
	// number of the currently published snapshot and LiveGenerations how
	// many generations are retained (the published one plus older ones
	// still pinned by open Views).
	Documents         int           `json:"documents"`
	DocumentsDeleted  int           `json:"documents_deleted"`
	IngestLag         int           `json:"ingest_lag"`
	WALBytes          int64         `json:"wal_bytes"`
	LastCheckpointAge time.Duration `json:"last_checkpoint_age_ns"`
	IndexEntries      int           `json:"index_entries"`
	IndexSizeBytes    int64         `json:"index_size_bytes"`
	Generation        uint64        `json:"generation"`
	LiveGenerations   int64         `json:"live_generations"`
	BTree             BTreeStats    `json:"btree"`
	Storage           StorageStats  `json:"storage"`
}

// Snapshot is the former name of Metrics.
//
// Deprecated: use Metrics; "snapshot" now refers to pinned point-in-time
// Views of the data (see DB.View).
type Snapshot = Metrics

// BTreeStats are the index B-tree's cumulative pager counters.
// PageReads are physical page reads, which are exactly the cache misses;
// Evictions count pages dropped from the LRU cache.
type BTreeStats struct {
	PageReads  int64 `json:"page_reads"`
	PageWrites int64 `json:"page_writes"`
	CacheHits  int64 `json:"cache_hits"`
	Evictions  int64 `json:"evictions"`
}

// StorageStats are the primary (and clustered, when present) record
// heaps' cumulative I/O counters, combined.
type StorageStats struct {
	RecordsWritten int64 `json:"records_written"`
	BytesWritten   int64 `json:"bytes_written"`
	SeqReads       int64 `json:"seq_reads"`
	RandomReads    int64 `json:"random_reads"`
	CachedReads    int64 `json:"cached_reads"`
	BytesRead      int64 `json:"bytes_read"`
	SubtreeReads   int64 `json:"subtree_reads"`
	SubtreeBytes   int64 `json:"subtree_bytes"`
}

// Metrics returns the current operational counters; see Metrics (type).
// It is safe to call concurrently with queries — reads are atomic or
// mutex-guarded copies, never locks held across I/O.
func (db *DB) Metrics() Metrics {
	reg := obs.Default().Snapshot()
	s := Metrics{
		Queries:       reg.Queries,
		QueryErrors:   reg.QueryErrors,
		ScanFallbacks: reg.Fallbacks,
		Scanned:       reg.Scanned,
		Candidates:    reg.Candidates,
		Matched:       reg.Matched,
		Results:       reg.Results,
		NodesVisited:  reg.NodesVisited,

		RejectedAdmission: reg.RejectedAdmission,
		DeadlineExceeded:  reg.DeadlineExceeded,
		BudgetExceeded:    reg.BudgetExceeded,
		PanicsRecovered:   reg.PanicsRecovered,
		Builds:            reg.Builds,
		BuildRecords:      reg.BuildRecords,
		BuildUnits:        reg.BuildUnits,
		BuildWall:         reg.BuildWall,

		IngestBatches:   reg.IngestBatches,
		IngestDocs:      reg.IngestDocs,
		IngestDeletes:   reg.IngestDeletes,
		IngestFsyncs:    reg.IngestFsyncs,
		IngestQueueFull: reg.IngestQueueFull,
		IngestReplayed:  reg.IngestReplayed,

		Checkpoints:        reg.Checkpoints,
		CheckpointFailures: reg.CheckpointFailures,
		ScrubPasses:        reg.ScrubPasses,
		ScrubFindings:      reg.ScrubFindings,
		AutoRebuilds:       reg.AutoRebuilds,
		AutoRebuildErrors:  reg.AutoRebuildErrors,

		Latency:           reg.Latency,
		Documents:         db.NumDocuments(),
		DocumentsDeleted:  db.store.NumDeleted(),
		IngestLag:         db.IngestLag(),
		WALBytes:          db.WALBytes(),
		LastCheckpointAge: time.Since(db.LastCheckpoint()),
		Generation:        db.GenerationID(),
		LiveGenerations:   db.LiveGenerations(),
	}
	st := db.store.Stats()
	s.Storage = StorageStats{
		RecordsWritten: st.RecordsWritten,
		BytesWritten:   st.BytesWritten,
		SeqReads:       st.SeqReads,
		RandomReads:    st.RandomReads,
		CachedReads:    st.CachedReads,
		BytesRead:      st.BytesRead,
		SubtreeReads:   st.SubtreeReads,
		SubtreeBytes:   st.SubtreeBytes,
	}
	if ix := db.indexRef(); ix != nil {
		s.IndexEntries = ix.Entries()
		s.IndexSizeBytes = ix.SizeBytes()
		if bt := ix.BTree(); bt != nil {
			bs := bt.Stats()
			s.BTree = BTreeStats{
				PageReads:  bs.PageReads,
				PageWrites: bs.PageWrites,
				CacheHits:  bs.CacheHits,
				Evictions:  bs.Evictions,
			}
		}
		if cs := ix.ClusteredStore(); cs != nil {
			cst := cs.Stats()
			s.Storage.RecordsWritten += cst.RecordsWritten
			s.Storage.BytesWritten += cst.BytesWritten
			s.Storage.SeqReads += cst.SeqReads
			s.Storage.RandomReads += cst.RandomReads
			s.Storage.CachedReads += cst.CachedReads
			s.Storage.BytesRead += cst.BytesRead
			s.Storage.SubtreeReads += cst.SubtreeReads
			s.Storage.SubtreeBytes += cst.SubtreeBytes
		}
	}
	return s
}

// Snapshot returns the current operational counters.
//
// Deprecated: use Metrics; "snapshot" now refers to pinned point-in-time
// Views of the data (see DB.View).
func (db *DB) Snapshot() Snapshot { return db.Metrics() }

// PublishExpvar exposes db's Metrics as the expvar variable "fix", so
// any handler serving expvar's /debug/vars (cmd/fixserve mounts one)
// reports it alongside the runtime's memstats. expvar names are
// process-global and cannot be unregistered, so only the first call in
// a process takes effect; later calls (for this or any other DB) are
// no-ops.
func PublishExpvar(db *DB) {
	obs.Publish(func() any { return db.Metrics() })
}
