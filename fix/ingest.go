package fix

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"time"

	"github.com/fix-index/fix/internal/core"
	"github.com/fix-index/fix/internal/obs"
	"github.com/fix-index/fix/internal/storage"
	"github.com/fix-index/fix/internal/xmltree"
)

// Durable batched ingest. The write path mirrors the read path's
// robustness contract: every acknowledged operation survives a crash,
// every failure is a typed error, and nothing blocks unboundedly.
//
// On a persistent DB the first ingest call creates fix.ingest, a
// write-ahead log based at the last committed store state. Each batch is
// appended and fsynced there *before* it touches the heap or the index —
// one fsync per batch, shared by every operation in it (group commit) —
// and the batch is applied under a single write-lock acquisition.
// Save absorbs the log's contents into the regular commit (heap sync,
// dictionary, tombstones, shadow-committed index) and only then resets
// the log; Open replays a surviving log after a crash. In-memory DBs get
// the same batching and backpressure semantics without the log.

// ErrIngestQueueFull reports that the ingester's bounded queue stayed
// full past the configured enqueue wait. The operation was not accepted
// and will never be applied; retry with exponential backoff (the queue
// drains at the disk's group-commit rate), or widen
// IngestConfig.QueueDepth / EnqueueWait if this is the steady state.
var ErrIngestQueueFull = errors.New("fix: ingest queue full; retry with backoff")

// ErrIngesterClosed reports an operation submitted to an Ingester after
// Close.
var ErrIngesterClosed = errors.New("fix: ingester closed")

// ErrUnknownDocument reports a delete aimed at a record number the
// store has never assigned. Only the offending delete fails: group
// commit coalesces operations from unrelated callers into one batch,
// and their valid operations still commit.
var ErrUnknownDocument = errors.New("fix: unknown document")

// ErrRebuildRequired reports an index-maintenance failure only a full
// rebuild can clear (inserting into a degraded index, or a new element
// label colliding with a value index's hash range fixed at build time).
// The document itself is stored durably; the index degrades and queries
// keep answering exactly via the scan fallback until RebuildIndex.
var ErrRebuildRequired = core.ErrRebuildRequired

// fileCreate and fileOpen are the seams through which the DB creates and
// opens its own files (the record heap and the ingest log); ingest crash
// tests swap them for fault-injecting variants, mirroring the core
// index's indexFS seam.
var fileCreate = storage.Create
var fileOpen = storage.Open

// IngestConfig tunes an Ingester. The zero value is ready to use.
type IngestConfig struct {
	// QueueDepth bounds the ingest queue; operations beyond it hit
	// backpressure. 0 means 256.
	QueueDepth int
	// MaxBatch caps how many operations one group commit coalesces.
	// 0 means 64.
	MaxBatch int
	// MaxWait is how long the committer lingers for more operations
	// after the first of a batch arrives, trading latency for larger
	// groups. 0 means 2ms.
	MaxWait time.Duration
	// EnqueueWait is how long a full queue blocks a submitter before
	// failing fast with ErrIngestQueueFull. 0 means 50ms; negative
	// means fail immediately.
	EnqueueWait time.Duration
}

func (c *IngestConfig) setDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.EnqueueWait == 0 {
		c.EnqueueWait = 50 * time.Millisecond
	}
}

// pendingOp is one queued ingest operation. done is buffered so the
// committer never blocks on an abandoned caller.
type pendingOp struct {
	kind   byte // core.IngestOpInsert or core.IngestOpDelete
	xml    []byte
	tree   *xmltree.Node
	rec    uint32 // assigned at commit (insert) or targeted (delete)
	marked bool   // this op set the tombstone (so rollback may clear it)
	flush  bool   // barrier marker: commit everything queued before it
	err    error  // per-op rejection (validation), overriding the batch outcome
	done   chan error
}

// Ingester is a handle for concurrent streaming ingest into a DB. Many
// goroutines may call Add/Delete concurrently; a single committer
// coalesces their operations into group-committed batches, so N
// concurrent writers cost ~one fsync per batch instead of one each.
// Acknowledgment (the nil error) means the operation is durable (on a
// persistent DB) and visible to queries.
//
// The queue is bounded: when it stays full past IngestConfig.EnqueueWait
// the submission fails fast with ErrIngestQueueFull rather than queueing
// unbounded work.
type Ingester struct {
	db  *DB
	cfg IngestConfig
	ctx context.Context // committer-goroutine context; immutable after NewIngesterCtx

	mu     sync.RWMutex // guards closed and sends on ops vs. Close
	closed bool
	ops    chan *pendingOp

	exited chan struct{} // closed when the committer goroutine returns
}

// NewIngester starts an ingester over db. Close it when done; an open
// ingester holds one background goroutine. It is NewIngesterCtx with
// context.Background().
func (db *DB) NewIngester(cfg IngestConfig) *Ingester {
	return db.NewIngesterCtx(context.Background(), cfg)
}

// NewIngesterCtx is NewIngester with a context for the committer
// goroutine: batch application carries its values (cancellation does
// not abort a batch mid-commit — once the WAL fsync has acknowledged
// it, the apply runs to completion). The ingester still drains and
// exits through Close, not through ctx.
func (db *DB) NewIngesterCtx(ctx context.Context, cfg IngestConfig) *Ingester {
	cfg.setDefaults()
	ing := &Ingester{
		db:     db,
		cfg:    cfg,
		ctx:    ctx,
		ops:    make(chan *pendingOp, cfg.QueueDepth),
		exited: make(chan struct{}),
	}
	go ing.commitLoop()
	return ing
}

// commitLoop is the single committer: it drains the queue into batches
// (up to MaxBatch operations, lingering MaxWait for stragglers), commits
// each batch with one WAL fsync and one write-lock acquisition, and
// acknowledges every operation with the batch's outcome.
func (ing *Ingester) commitLoop() {
	defer close(ing.exited)
	for op := range ing.ops {
		batch := []*pendingOp{op}
		if !op.flush {
			timer := time.NewTimer(ing.cfg.MaxWait)
		collect:
			for len(batch) < ing.cfg.MaxBatch {
				select {
				case next, ok := <-ing.ops:
					if !ok {
						break collect
					}
					batch = append(batch, next)
					if next.flush {
						break collect
					}
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		}
		work := batch[:0:0]
		for _, p := range batch {
			if !p.flush {
				work = append(work, p)
			}
		}
		err := ing.db.commitPending(ing.ctx, work)
		for _, p := range batch {
			// An op rejected during validation (p.err) reports its own
			// failure; the batch outcome belongs to the ops that were
			// actually committed.
			if p.err != nil {
				p.done <- p.err
			} else {
				p.done <- err
			}
		}
	}
}

// enqueue submits p, applying backpressure: an immediate slot if one is
// free, otherwise a bounded wait, then fail-fast.
func (ing *Ingester) enqueue(ctx context.Context, p *pendingOp) error {
	ing.mu.RLock()
	defer ing.mu.RUnlock()
	if ing.closed {
		return ErrIngesterClosed
	}
	select {
	case ing.ops <- p:
		return nil
	default:
	}
	if ing.cfg.EnqueueWait < 0 {
		obs.Default().ObserveIngestQueueFull(1)
		return ErrIngestQueueFull
	}
	timer := time.NewTimer(ing.cfg.EnqueueWait)
	defer timer.Stop()
	select {
	case ing.ops <- p:
		return nil
	case <-timer.C:
		obs.Default().ObserveIngestQueueFull(1)
		return ErrIngestQueueFull
	case <-ctx.Done():
		return ctx.Err()
	}
}

// await blocks until the committer acknowledges p or ctx is done. A
// context cancellation abandons the wait, not the operation: the batch
// may still commit.
func (ing *Ingester) await(ctx context.Context, p *pendingOp) error {
	select {
	case err := <-p.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Add parses one XML document and submits it. The returned ID is
// assigned at commit; a nil error means the document is durable and
// visible. Parse failures are rejected before anything is queued.
func (ing *Ingester) Add(ctx context.Context, doc string) (uint32, error) {
	p, err := ing.db.insertOp(doc)
	if err != nil {
		return 0, err
	}
	if err := ing.enqueue(ctx, p); err != nil {
		return 0, err
	}
	if err := ing.await(ctx, p); err != nil {
		return 0, err
	}
	return p.rec, nil
}

// AddBatch submits several documents. They are queued individually (the
// committer may split or merge them across group commits); the returned
// IDs are in argument order. The first submission or commit error stops
// the remaining waits, but operations already queued may still commit.
func (ing *Ingester) AddBatch(ctx context.Context, docs []string) ([]uint32, error) {
	pending := make([]*pendingOp, 0, len(docs))
	for _, doc := range docs {
		p, err := ing.db.insertOp(doc)
		if err != nil {
			return nil, err
		}
		pending = append(pending, p)
	}
	for _, p := range pending {
		if err := ing.enqueue(ctx, p); err != nil {
			return nil, err
		}
	}
	recs := make([]uint32, len(pending))
	for i, p := range pending {
		if err := ing.await(ctx, p); err != nil {
			return nil, err
		}
		recs[i] = p.rec
	}
	return recs, nil
}

// Delete submits a durable delete of document rec: the record is
// tombstoned (excluded from every query path) and its index entries are
// removed. Deleting an unknown record fails only this operation with
// ErrUnknownDocument; other operations sharing its group commit are
// unaffected.
func (ing *Ingester) Delete(ctx context.Context, rec uint32) error {
	p := &pendingOp{kind: core.IngestOpDelete, rec: rec, done: make(chan error, 1)}
	if err := ing.enqueue(ctx, p); err != nil {
		return err
	}
	return ing.await(ctx, p)
}

// Flush blocks until everything queued before it has been committed.
func (ing *Ingester) Flush(ctx context.Context) error {
	p := &pendingOp{flush: true, done: make(chan error, 1)}
	if err := ing.enqueue(ctx, p); err != nil {
		return err
	}
	return ing.await(ctx, p)
}

// QueueLen reports how many operations are waiting in the queue — the
// in-memory half of ingest lag (DB.IngestLag is the durable half).
func (ing *Ingester) QueueLen() int { return len(ing.ops) }

// Close stops accepting operations, waits for the committer to drain
// and commit everything already queued, and returns. It does not Save:
// the WAL keeps acknowledged operations durable until the next Save.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	if !ing.closed {
		ing.closed = true
		close(ing.ops)
	}
	ing.mu.Unlock()
	<-ing.exited
	return nil
}

// ValidateDocument parses doc under the DB's parse limits without
// storing anything. Servers use it to reject malformed or oversized
// input with a client error before the operation enters the ingest
// queue (once queued, commit errors are indistinguishable from server
// faults).
func (db *DB) ValidateDocument(doc string) error {
	_, err := xmltree.ParseWithLimits(bytes.NewReader([]byte(doc)), db.parseLimits())
	return err
}

// insertOp parses and validates one document into a pending insert.
func (db *DB) insertOp(doc string) (*pendingOp, error) {
	raw := []byte(doc)
	n, err := xmltree.ParseWithLimits(bytes.NewReader(raw), db.parseLimits())
	if err != nil {
		return nil, err
	}
	return &pendingOp{
		kind: core.IngestOpInsert,
		xml:  raw,
		tree: n,
		done: make(chan error, 1),
	}, nil
}

// IngestBatchCtx ingests a batch of documents in one group commit: one
// WAL append sharing one fsync, one write-lock acquisition for the whole
// batch. It returns the assigned document IDs in argument order. On
// error nothing in the batch is visible or durable (the batch rolls
// back as a unit). For continuous concurrent ingest prefer an Ingester,
// which coalesces batches across callers.
func (db *DB) IngestBatchCtx(ctx context.Context, docs []string) ([]uint32, error) {
	if len(docs) == 0 {
		return nil, nil
	}
	pending := make([]*pendingOp, 0, len(docs))
	for _, doc := range docs {
		p, err := db.insertOp(doc)
		if err != nil {
			return nil, err
		}
		pending = append(pending, p)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := db.commitPending(ctx, pending); err != nil {
		return nil, err
	}
	recs := make([]uint32, len(pending))
	for i, p := range pending {
		recs[i] = p.rec
	}
	return recs, nil
}

// DeleteDocument durably deletes document rec: the record is tombstoned
// — excluded from queries, scans, and Exists — and its index entries are
// removed. The record's bytes stay in the append-only heap until a
// rebuild. It is DeleteDocumentCtx with context.Background().
func (db *DB) DeleteDocument(rec uint32) error {
	return db.DeleteDocumentCtx(context.Background(), rec)
}

// DeleteDocumentCtx is DeleteDocument with cancellation (observed before
// the commit starts; the commit itself is not interruptible).
func (db *DB) DeleteDocumentCtx(ctx context.Context, rec uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p := &pendingOp{kind: core.IngestOpDelete, rec: rec, done: make(chan error, 1)}
	if err := db.commitPending(ctx, []*pendingOp{p}); err != nil {
		return err
	}
	return p.err
}

// commitPending serializes one batch against every other mutation and
// commits it. Ingest entry points call it; the legacy AddDocument path
// shares commitLocked underneath.
func (db *DB) commitPending(ctx context.Context, ops []*pendingOp) error {
	if len(ops) == 0 {
		return nil
	}
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	if err := db.ensureIngestLog(); err != nil {
		return err
	}
	return db.commitLocked(ctx, ops)
}

// ensureIngestLog lazily creates fix.ingest on a persistent DB, first
// making the log's base durable: the heap prefix is fsynced and the
// dictionary and tombstone sidecar saved, so replay re-parses documents
// against exactly the label assignments the original encoding used.
// Requires ingestMu. In-memory DBs never have a log.
func (db *DB) ensureIngestLog() error {
	if db.wal != nil || db.dir == "" {
		return nil
	}
	if err := db.store.Sync(); err != nil {
		return fmt.Errorf("fix: syncing heap for ingest log base: %w", err)
	}
	if err := db.saveDict(); err != nil {
		return fmt.Errorf("fix: saving dictionary for ingest log base: %w", err)
	}
	if err := db.saveTombs(); err != nil {
		return fmt.Errorf("fix: saving tombstones for ingest log base: %w", err)
	}
	f, err := fileCreate(filepath.Join(db.dir, core.IngestLogName))
	if err != nil {
		return fmt.Errorf("fix: creating ingest log: %w", err)
	}
	lg, err := core.NewIngestLog(f, uint32(db.store.NumRecords()), db.store.Size())
	if err != nil {
		_ = f.Close()
		return err
	}
	db.wal = lg
	return nil
}

// commitLocked is the group commit. Requires ingestMu (so the record
// count is stable and the WAL is appended in commit order).
//
// Protocol: assign record numbers and validate every operation; append
// the batch to the WAL and fsync it (the durability point — after this
// returns success, recovery will replay the batch); apply the batch to
// the heap and index under the write lock. An apply failure or panic
// rolls the whole batch back — WAL suffix truncated first so a crash
// cannot resurrect the unacknowledged batch, then heap and tombstones
// restored — and conservatively degrades the index, because a partial
// apply may have left entries behind.
//
// Validation failures are per-op, not per-batch: a delete aimed at a
// record the store never assigned marks only that op's err field
// (ErrUnknownDocument) and is excluded from the WAL and the apply.
// Group commit coalesces unrelated callers into one batch, so one
// client's bad delete must not fail another client's valid operations.
func (db *DB) commitLocked(ctx context.Context, ops []*pendingOp) error {
	preRecords := db.store.NumRecords()
	preEnd := db.store.Size()
	nrec := uint32(preRecords)
	walOps := make([]core.IngestOp, 0, len(ops))
	valid := make([]*pendingOp, 0, len(ops))
	docs, deletes := 0, 0
	for _, p := range ops {
		switch p.kind {
		case core.IngestOpInsert:
			p.rec = nrec
			nrec++
			docs++
			walOps = append(walOps, core.IngestOp{Kind: core.IngestOpInsert, Rec: p.rec, XML: p.xml})
			valid = append(valid, p)
		case core.IngestOpDelete:
			if int(p.rec) >= preRecords {
				p.err = fmt.Errorf("%w: delete of record %d out of range (have %d)", ErrUnknownDocument, p.rec, preRecords)
				continue
			}
			deletes++
			walOps = append(walOps, core.IngestOp{Kind: core.IngestOpDelete, Rec: p.rec})
			valid = append(valid, p)
		default:
			return fmt.Errorf("fix: unknown ingest op kind %d", p.kind)
		}
	}
	if len(valid) == 0 {
		return nil // every op was rejected individually; nothing to commit
	}
	var walSize0 int64
	if db.wal != nil {
		walSize0 = db.wal.Size()
		if err := db.wal.AppendBatch(walOps); err != nil {
			return err // nothing durable, nothing applied, nothing acked
		}
	}
	// The batch is WAL-durable (acknowledged) past this point, so the
	// apply must run to completion even if the caller's context dies
	// mid-batch: cancellation must never roll back an acknowledged batch.
	if err := db.applyBatch(context.WithoutCancel(ctx), valid); err != nil {
		db.rollbackBatch(valid, preRecords, preEnd, walSize0, len(walOps), err)
		return err
	}
	fsyncs := 0
	if db.wal != nil {
		fsyncs = 1
	}
	obs.Default().ObserveIngestBatch(docs, deletes, fsyncs)
	// Publish the post-batch state as a new generation so new Views (and
	// the pin-per-call DB query methods) observe the acknowledged writes.
	// The rollback path above deliberately does not publish: the previous
	// generation remains an exact snapshot of the pre-batch state.
	db.publish()
	return nil
}

// applyBatch applies a WAL-durable batch to the heap and the index under
// one write-lock acquisition. A panic anywhere inside is contained into
// an error wrapping ErrPanic (and counted), so the caller can roll back.
// An operation that stores fine but cannot be indexed
// (ErrRebuildRequired) degrades the index and does not fail the batch —
// durability never depends on the index.
//
// Heap appends and deletes run in operation order; the batch's inserts
// are then indexed in one InsertDocumentsCtx call, which fans the
// per-document eigenvalue work out over the build worker pool instead
// of computing it one document at a time under the write lock. Deletes
// can only target pre-batch records (commitLocked validates this), so
// index-deleting them before the batch's own inserts are indexed cannot
// remove a new entry.
func (db *DB) applyBatch(ctx context.Context, ops []*pendingOp) (err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			obs.Default().ObservePanicRecovered()
			err = fmt.Errorf("%w: ingest batch: %v\n%s", ErrPanic, r, debug.Stack())
		}
	}()
	inserted := make([]uint32, 0, len(ops))
	for _, p := range ops {
		switch p.kind {
		case core.IngestOpInsert:
			rec, aerr := db.store.AppendTree(p.tree)
			if aerr != nil {
				return aerr
			}
			if rec != p.rec {
				return fmt.Errorf("fix: ingest batch applied record %d, expected %d", rec, p.rec)
			}
			inserted = append(inserted, rec)
		case core.IngestOpDelete:
			marked, derr := db.store.MarkDeleted(p.rec)
			if derr != nil {
				return derr
			}
			p.marked = marked
			if db.index != nil && db.index.Health() == nil {
				if _, derr := db.index.DeleteDocument(p.rec); derr != nil {
					return derr
				}
			}
		}
	}
	if len(inserted) > 0 && db.index != nil && db.index.Health() == nil {
		if ierr := db.index.InsertDocumentsCtx(ctx, inserted); ierr != nil {
			if !errors.Is(ierr, ErrRebuildRequired) {
				return ierr
			}
			db.index.Degrade(ierr)
		}
	}
	return nil
}

// rollbackBatch undoes a failed batch: the WAL suffix goes first (so a
// crash mid-rollback cannot replay the unacknowledged batch), then the
// heap and tombstones are restored to their pre-batch state, and the
// index is conservatively degraded — a partial apply may have inserted
// entries that now point past the truncated heap, and degradation routes
// queries to the exact scan fallback until a rebuild. Rollback steps are
// best-effort: if the disk is failing they may fail too, in which case
// reopening the database replays only acknowledged batches.
func (db *DB) rollbackBatch(ops []*pendingOp, preRecords int, preEnd int64, walSize0 int64, nwal int, cause error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal != nil {
		_ = db.wal.TruncateBatch(walSize0, nwal)
	}
	for _, p := range ops {
		if p.kind == core.IngestOpDelete && p.marked {
			db.store.UnmarkDeleted(p.rec)
			p.marked = false
		}
	}
	_ = db.store.TruncateTo(preRecords, preEnd)
	if db.index != nil {
		db.index.Degrade(fmt.Errorf("fix: ingest batch rolled back: %w", cause))
	}
}

// IngestLag returns the number of acknowledged operations the ingest
// log is carrying ahead of the last Save — the work a crash would
// replay, cleared by Save. It is 0 for in-memory DBs and before the
// first ingest.
func (db *DB) IngestLag() int {
	db.ingestMu.Lock()
	defer db.ingestMu.Unlock()
	if db.wal == nil {
		return 0
	}
	return db.wal.Ops()
}

// DeletedDocuments returns how many documents are tombstoned (deleted
// but still occupying heap space until a rebuild).
func (db *DB) DeletedDocuments() int { return db.store.NumDeleted() }

// saveTombs writes the tombstone sidecar (fix.tomb) atomically: temp
// file, fsync, rename — the same crash-safety bar as labels.dict. An
// empty set still writes the file, so a reopened DB never resurrects
// documents deleted before the last Save.
func (db *DB) saveTombs() error {
	path := filepath.Join(db.dir, "fix.tomb")
	data := storage.EncodeTombstones(db.store.DeletedRecords())
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadTombs restores the tombstone set from fix.tomb; a missing sidecar
// means no deletes were ever committed. A corrupt sidecar fails the open
// loudly — silently dropping it would resurrect deleted documents.
//
// A sidecar written by a Save that crashed before resetting the ingest
// log (wal, when non-nil) may carry tombstones for records at or past
// the log's base; the heap has just been truncated back to that base,
// so those records do not exist yet. Every such delete is necessarily
// still in the log — the sidecar is only rewritten while the log guards
// all post-base operations — so they are dropped here and re-applied by
// replay instead of failing the open.
func (db *DB) loadTombs(wal *core.IngestLog) error {
	data, err := os.ReadFile(filepath.Join(db.dir, "fix.tomb"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	recs, err := storage.DecodeTombstones(data)
	if err != nil {
		return fmt.Errorf("fix: loading tombstones: %w", err)
	}
	if wal != nil {
		base, _ := wal.Base()
		kept := recs[:0]
		for _, r := range recs {
			if r < base {
				kept = append(kept, r)
			}
		}
		recs = kept
	}
	return db.store.SetDeleted(recs)
}
