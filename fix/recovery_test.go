package fix

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildPersistentDB creates an on-disk database with an index and returns
// its directory plus the reference answer for the probe query.
func buildPersistentDB(t *testing.T) (string, Result) {
	t.Helper()
	dbdir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildIndex(IndexOptions{}); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dbdir, want
}

func corruptBtreePages(t *testing.T, dbdir string) {
	t.Helper()
	path := filepath.Join(dbdir, "fix.btree")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const pageSize = 4096
	for off := pageSize + 100; off < len(buf); off += pageSize {
		buf[off] ^= 0xFF
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptIndexScanFallbackAndRebuild(t *testing.T) {
	dbdir, want := buildPersistentDB(t)
	corruptBtreePages(t, dbdir)

	db, err := Open(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	got, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count {
		t.Errorf("degraded query count = %d, want %d", got.Count, want.Count)
	}
	if !got.ScanFallback {
		t.Error("query over a corrupt index did not report the scan fallback")
	}
	if err := db.IndexHealth(); err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("IndexHealth = %v, want ErrCorrupt", err)
	}
	if err := db.VerifyIndex(); err == nil {
		t.Error("VerifyIndex passed on a corrupt index")
	}
	// QueryDocuments must also survive via the scan path.
	ids, err := db.QueryDocuments("//author[email]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("degraded QueryDocuments = %v, want [0 1]", ids)
	}

	if err := db.RebuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := db.IndexHealth(); err != nil {
		t.Fatalf("IndexHealth after rebuild: %v", err)
	}
	if err := db.VerifyIndex(); err != nil {
		t.Fatalf("VerifyIndex after rebuild: %v", err)
	}
	got, err = db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if got.ScanFallback {
		t.Error("rebuilt index still on the scan fallback")
	}
	if got.Count != want.Count {
		t.Errorf("rebuilt query count = %d, want %d", got.Count, want.Count)
	}

	// The rebuild must also be durable.
	db.Close()
	re, err := Open(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.VerifyIndex(); err != nil {
		t.Fatalf("VerifyIndex after reopen: %v", err)
	}
}

func TestVerifyIndexHealthy(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	if err := db.IndexHealth(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyIndexWithoutIndex(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.IndexHealth(); err != nil {
		t.Fatalf("IndexHealth with no index = %v, want nil", err)
	}
	if err := db.VerifyIndex(); err == nil {
		t.Error("VerifyIndex with no index succeeded")
	}
}

// TestLeftoverJournalReplayedOnOpen plants a stale journal by hand and
// checks Open replays or discards it transparently.
func TestLeftoverJournalReplayedOnOpen(t *testing.T) {
	dbdir, want := buildPersistentDB(t)

	// An invalid (truncated) journal must be discarded, not replayed.
	jpath := filepath.Join(dbdir, "fix.journal")
	if err := os.WriteFile(jpath, []byte("FIXJNL01 truncated mid-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dbdir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := os.Stat(jpath); !os.IsNotExist(err) {
		t.Error("invalid journal survived Open")
	}
	if err := db.IndexHealth(); err != nil {
		t.Fatalf("IndexHealth after discarding journal: %v", err)
	}
	got, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("query after journal discard = %+v, want %+v", got, want)
	}
}
