package fix

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fix-index/fix/internal/obs"
)

// newLargeScanDB builds an unindexed database big enough that a full
// scan refinement takes well over a millisecond.
func newLargeScanDB(t testing.TB) *DB {
	t.Helper()
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "<a><b>t%d</b></a>", i)
	}
	sb.WriteString("</r>")
	doc := sb.String()
	for i := 0; i < 200; i++ {
		if _, err := db.AddDocumentString(doc); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDeadlineKillsPromptlyWithPartialTrace(t *testing.T) {
	db := newLargeScanDB(t)

	// Sanity: ungoverned, the query takes real time and succeeds.
	res, err := db.Query("//a/b")
	if err != nil {
		t.Fatal(err)
	}
	want := res.Count

	start := time.Now()
	res, err = db.Query("//a/b", WithLimits(Limits{Timeout: time.Millisecond}), WithTrace())
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ms-deadline query = %v (count %d), want context.DeadlineExceeded", err, res.Count)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("deadline kill took %v, want well under 100ms", elapsed)
	}
	if res.Trace == nil {
		t.Fatal("no partial trace on a deadline kill with WithTrace")
	}
	if res.Trace.Total <= 0 {
		t.Fatal("partial trace has no total time")
	}

	// The database is unharmed: the same query still answers exactly.
	res, err = db.Query("//a/b")
	if err != nil || res.Count != want {
		t.Fatalf("query after deadline kill = (%d, %v), want (%d, nil)", res.Count, err, want)
	}
}

func TestBudgetExceededCountersReconciled(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	before := obs.Default().Snapshot()

	res, err := db.Query("//article[author]/title", WithLimits(Limits{MaxRefineNodes: 1}), WithTrace())
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budgeted query = %v, want ErrBudgetExceeded", err)
	}
	if res.Trace == nil {
		t.Fatal("no partial trace on a budget kill with WithTrace")
	}

	after := obs.Default().Snapshot()
	if d := after.BudgetExceeded - before.BudgetExceeded; d != 1 {
		t.Errorf("queries_budget_exceeded delta = %d, want 1", d)
	}
	if d := after.QueryErrors - before.QueryErrors; d != 1 {
		t.Errorf("query_errors delta = %d, want 1", d)
	}
	if d := after.Queries - before.Queries; d != 0 {
		t.Errorf("queries delta = %d, want 0 (failed queries are errors, not completions)", d)
	}
}

func TestDeadlineCounterClassified(t *testing.T) {
	db := newLargeScanDB(t)
	before := obs.Default().Snapshot()
	_, err := db.Query("//a/b", WithLimits(Limits{Timeout: time.Millisecond}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	after := obs.Default().Snapshot()
	if d := after.DeadlineExceeded - before.DeadlineExceeded; d != 1 {
		t.Errorf("queries_deadline_exceeded delta = %d, want 1", d)
	}
}

func TestMaxResultsCap(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	// //article has 3 matches in the fixture docs.
	if _, err := db.Query("//article", WithLimits(Limits{MaxResults: 2})); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("capped query = %v, want ErrBudgetExceeded", err)
	}
	if res, err := db.Query("//article", WithLimits(Limits{MaxResults: 3})); err != nil || res.Count != 3 {
		t.Fatalf("query at the cap = (%d, %v), want (3, nil)", res.Count, err)
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	res, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates < 2 {
		t.Skipf("fixture produced %d candidates; need >= 2", res.Candidates)
	}
	_, err = db.Query("//article[author]/title", WithLimits(Limits{MaxCandidates: 1}))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("candidate-capped query = %v, want ErrBudgetExceeded", err)
	}
}

func TestWithLimitsOverridesDBDefault(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	db.SetOptions(Options{Limits: Limits{MaxResults: 1}})
	defer db.SetOptions(Options{})

	if _, err := db.Query("//article"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("DB-default limit not applied: %v", err)
	}
	// The per-query option replaces the DB default wholesale: an empty
	// Limits via WithLimits means unlimited, not "merge with default".
	if res, err := db.Query("//article", WithLimits(Limits{})); err != nil || res.Count != 3 {
		t.Fatalf("override query = (%d, %v), want (3, nil)", res.Count, err)
	}
}

func TestWithScanOnlyExact(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	want, err := db.Query("//article[author]/title")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("//article[author]/title", WithScanOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ScanFallback {
		t.Fatal("WithScanOnly did not report ScanFallback")
	}
	if res.Count != want.Count {
		t.Fatalf("scan-only count = %d, indexed count = %d; fallback must stay exact", res.Count, want.Count)
	}
}

func TestPanicContainedAndDegrades(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	before := obs.Default().Snapshot()
	db.SetOptions(Options{
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery:        func(QueryTrace) { panic("injected") },
	})
	_, err := db.Query("//article")
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panicking query = %v, want ErrPanic", err)
	}
	if db.IndexHealth() == nil {
		t.Fatal("contained panic did not degrade the index")
	}
	after := obs.Default().Snapshot()
	if d := after.PanicsRecovered - before.PanicsRecovered; d != 1 {
		t.Errorf("panics_recovered delta = %d, want 1", d)
	}

	// Degraded, not dead: without the hook the query answers exactly via
	// the scan fallback, and a rebuild restores full health.
	db.SetOptions(Options{})
	res, err := db.Query("//article")
	if err != nil || res.Count != 3 || !res.ScanFallback {
		t.Fatalf("query on degraded index = (%d, fallback=%v, %v), want (3, true, nil)", res.Count, res.ScanFallback, err)
	}
	if err := db.RebuildIndex(); err != nil {
		t.Fatal(err)
	}
	if err := db.IndexHealth(); err != nil {
		t.Fatalf("health after rebuild: %v", err)
	}
	res, err = db.Query("//article")
	if err != nil || res.Count != 3 || res.ScanFallback {
		t.Fatalf("query after rebuild = (%d, fallback=%v, %v), want (3, false, nil)", res.Count, res.ScanFallback, err)
	}
}

func TestAddDocumentParseLimits(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	db.SetOptions(Options{ParseLimits: ParseLimits{MaxDepth: 2}})
	deep := "<a><b><c/></b></a>"
	if _, err := db.AddDocumentString(deep); !errors.Is(err, ErrDocumentLimit) {
		t.Fatalf("over-deep document = %v, want ErrDocumentLimit", err)
	}
	if db.NumDocuments() != 0 {
		t.Fatalf("rejected document was stored: %d documents", db.NumDocuments())
	}
	if _, err := db.AddDocumentString("<a><b/></a>"); err != nil {
		t.Fatalf("document within limits: %v", err)
	}
}

func TestQueryErrorClassification(t *testing.T) {
	db := newTestDB(t, IndexOptions{})
	if _, err := db.Query("//["); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("malformed query = %v, want ErrBadQuery", err)
	}
	huge := "/" + strings.Repeat("a", 5000)
	if _, err := db.Query(huge); !errors.Is(err, ErrQueryLimit) {
		t.Fatalf("oversized query = %v, want ErrQueryLimit", err)
	}
}

// TestConcurrentDeadlinesConsistent runs governed and ungoverned queries
// concurrently (meaningful mostly under -race): deadline kills must not
// corrupt shared state, and every ungoverned query keeps answering
// exactly throughout.
func TestConcurrentDeadlinesConsistent(t *testing.T) {
	db := newLargeScanDB(t)
	res, err := db.Query("//a/b")
	if err != nil {
		t.Fatal(err)
	}
	want := res.Count

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if w%2 == 0 {
					res, err := db.Query("//a/b")
					if err != nil || res.Count != want {
						t.Errorf("ungoverned query = (%d, %v), want (%d, nil)", res.Count, err, want)
						return
					}
				} else {
					res, err := db.Query("//a/b",
						WithLimits(Limits{Timeout: time.Millisecond}), WithTrace())
					if err == nil {
						continue // fast machine: finished inside the deadline
					}
					if !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("governed query = %v, want DeadlineExceeded", err)
						return
					}
					if res.Trace == nil {
						t.Error("deadline kill lost its partial trace")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkQueryGovernanceOverhead measures the default path with the
// governance layer in place: no limits, background context. Compare
// against the governed variant to see what a budget costs when used.
func BenchmarkQueryGovernanceOverhead(b *testing.B) {
	db := newLargeScanDB(b)
	b.Run("ungoverned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("//a/b"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("budgeted", func(b *testing.B) {
		lim := Limits{MaxRefineNodes: 1 << 40}
		for i := 0; i < b.N; i++ {
			if _, err := db.Query("//a/b", WithLimits(lim)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestAddDocumentMaxBytes(t *testing.T) {
	db, err := CreateMem()
	if err != nil {
		t.Fatal(err)
	}
	db.SetOptions(Options{ParseLimits: ParseLimits{MaxBytes: 32}})
	big := "<a>" + strings.Repeat("x", 64) + "</a>"
	// The reader is cut off at the bound before parsing, so an
	// arbitrarily large input cannot be buffered wholesale.
	if _, err := db.AddDocument(strings.NewReader(big)); !errors.Is(err, ErrDocumentLimit) {
		t.Fatalf("oversized document = %v, want ErrDocumentLimit", err)
	}
	if db.NumDocuments() != 0 {
		t.Fatalf("rejected document was stored: %d documents", db.NumDocuments())
	}
	if _, err := db.AddDocumentString("<a>ok</a>"); err != nil {
		t.Fatalf("document within the byte limit: %v", err)
	}
}
