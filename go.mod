module github.com/fix-index/fix

go 1.22
