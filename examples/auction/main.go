// Auction: the large-document scenario. One XMark-style auction site
// document is indexed with a positive depth limit, so FIX enumerates one
// depth-limited subpattern per element (paper §4.4) and twig queries are
// answered by pruning inside the document. The example also enables the
// integrated value index (§4.6) and runs value-equality predicates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"github.com/fix-index/fix/fix"
)

func item(rng *rand.Rand, sellers []string) string {
	var sb strings.Builder
	sb.WriteString("<item><location>loc</location>")
	if rng.Intn(10) > 0 {
		sb.WriteString("<name>gadget</name>")
	}
	fmt.Fprintf(&sb, "<seller>%s</seller>", sellers[rng.Intn(len(sellers))])
	if rng.Intn(2) == 0 {
		sb.WriteString("<payment>cash</payment>")
	}
	sb.WriteString("<description>")
	if rng.Intn(3) == 0 {
		sb.WriteString("<parlist><listitem><text>deep</text></listitem></parlist>")
	} else {
		sb.WriteString("<text>flat</text>")
	}
	sb.WriteString("</description>")
	sb.WriteString("<mailbox>")
	for i := rng.Intn(3); i > 0; i-- {
		sb.WriteString("<mail><from>f</from><to>t</to><text>hello<emph>deal</emph></text></mail>")
	}
	sb.WriteString("</mailbox></item>")
	return sb.String()
}

func main() {
	rng := rand.New(rand.NewSource(7))
	sellers := []string{"alice", "bob", "carol", "dave"}
	var doc strings.Builder
	doc.WriteString("<site><regions><europe>")
	const numItems = 4000
	for i := 0; i < numItems; i++ {
		doc.WriteString(item(rng, sellers))
	}
	doc.WriteString("</europe></regions></site>")

	db, err := fix.CreateMem()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.AddDocumentString(doc.String()); err != nil {
		log.Fatal(err)
	}

	// Depth limit 5 covers all the twigs below; Values enables the
	// equality predicates.
	if err := db.BuildIndex(fix.IndexOptions{DepthLimit: 5, Clustered: true, Values: true, Beta: 8}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction site: 1 document, %d items; index has %d entries (one per element)\n",
		numItems, db.IndexEntries())

	queries := []string{
		"//item[name]/mailbox/mail[to]",
		"//item/description/parlist/listitem/text",
		"//mail/text/emph",
		`//item[seller="alice"][payment]/name`,
		`//item[seller="nobody"]`,
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s results=%-6d candidates=%d of %d entries\n",
			q, res.Count, res.Candidates, res.Entries)
	}
}
