// Quickstart: build a FIX index over a handful of documents and query it.
package main

import (
	"fmt"
	"log"

	"github.com/fix-index/fix/fix"
)

func main() {
	db, err := fix.CreateMem()
	if err != nil {
		log.Fatal(err)
	}
	docs := []string{
		`<article><title>Spectral twigs</title><author><email>a@x</email></author></article>`,
		`<article><title>Holistic joins</title><author><phone>555</phone><email>b@x</email></author></article>`,
		`<book><title>Data on the Web</title><author><affiliation>inria</affiliation></author></book>`,
		`<article><title>No authors here</title></article>`,
	}
	for _, d := range docs {
		if _, err := db.AddDocumentString(d); err != nil {
			log.Fatal(err)
		}
	}

	// The collection scenario: each document is one indexable unit.
	if err := db.BuildIndex(fix.IndexOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents (%d index entries, %d bytes)\n",
		db.NumDocuments(), db.IndexEntries(), db.IndexSizeBytes())

	for _, q := range []string{
		"//article[author]/title",
		"//author[phone][email]",
		"//book/author/affiliation",
		"//article/author/affiliation", // no results
	} {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s -> %d results (pruned %d/%d entries before refinement)\n",
			q, res.Count, res.Entries-res.Candidates, res.Entries)
	}

	// Which documents contain a match?
	ids, err := db.QueryDocuments("//author[email]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("documents with //author[email]: %v\n", ids)
}
