// Bibliography: the paper's §1 motivating scenario. A collection of
// bibliography records where every author element carries a different
// combination of sub-elements, so clustering indexes (F&B) degenerate to
// singleton classes while FIX keys each record by its spectral features.
//
// The example builds a persistent database with a clustered collection
// index, runs the paper's introductory query //author[phone][email], and
// reports the implementation-independent pruning metrics.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"github.com/fix-index/fix/fix"
)

var kinds = []string{"article", "book", "inproceedings", "www"}

// authorBlock emits an author with a random subset of contact details —
// the structural heterogeneity that motivates feature-based indexing.
func authorBlock(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("<author><name>a</name>")
	if rng.Intn(2) == 0 {
		sb.WriteString("<address>addr</address>")
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("<email>e@x</email>")
	}
	if rng.Intn(3) == 0 {
		sb.WriteString("<phone>1</phone>")
	}
	if rng.Intn(3) == 0 {
		sb.WriteString("<affiliation>uni</affiliation>")
	}
	sb.WriteString("</author>")
	return sb.String()
}

func record(rng *rand.Rand) string {
	kind := kinds[rng.Intn(len(kinds))]
	var sb strings.Builder
	fmt.Fprintf(&sb, "<%s><title>t</title>", kind)
	for i := rng.Intn(3); i >= 0; i-- {
		sb.WriteString(authorBlock(rng))
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("<year>2006</year>")
	}
	fmt.Fprintf(&sb, "</%s>", kind)
	return sb.String()
}

func main() {
	dir, err := os.MkdirTemp("", "fixbib")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := fix.Create(filepath.Join(dir, "db"))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const numDocs = 2000
	for i := 0; i < numDocs; i++ {
		if _, err := db.AddDocumentString(record(rng)); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.BuildIndex(fix.IndexOptions{Clustered: true}); err != nil {
		log.Fatal(err)
	}
	if err := db.Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bibliography: %d records, clustered index of %d entries (%d KB) in %v\n",
		db.NumDocuments(), db.IndexEntries(), db.IndexSizeBytes()/1024, db.IndexBuildTime().Round(1e6))

	queries := []string{
		"//author[phone][email]", // the paper's introduction query
		"//article/author[affiliation]",
		"//book[author/address]/title",
		"//www/author[phone][affiliation]",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		m, err := db.Effectiveness(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s results=%-5d sel=%5.1f%% pp=%5.1f%% fpr=%5.1f%%\n",
			q, res.Count, m.Selectivity*100, m.PruningPower*100, m.FalsePosRatio*100)
	}

	// Reopen from disk to show the index is durable.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	re, err := fix.Open(filepath.Join(dir, "db"))
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	res, err := re.Query("//author[phone][email]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened database answers //author[phone][email] with %d results\n", res.Count)
}
